#include "sim/aggregate.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <cmath>

#include "protocols/lesk.hpp"
#include "sim/adversary_spec.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

TEST(Aggregate, RejectsBadConfig) {
  Lesk lesk(0.5);
  Rng rng(1);
  auto adv = make_adversary(AdversarySpec{}, rng.child(1));
  Rng sim = rng.child(2);
  EXPECT_THROW((void)run_aggregate(lesk, *adv, {0, 100}, sim),
               ContractViolation);
  EXPECT_THROW((void)run_aggregate(lesk, *adv, {4, 0}, sim),
               ContractViolation);
}

TEST(Aggregate, OneStationElectsInOneSlot) {
  Lesk lesk(0.5);
  Rng rng(2);
  auto adv = make_adversary(AdversarySpec{}, rng.child(1));
  Rng sim = rng.child(2);
  const auto out = run_aggregate(lesk, *adv, {1, 100}, sim);
  EXPECT_TRUE(out.elected);
  EXPECT_EQ(out.slots, 1);
  EXPECT_EQ(out.singles, 1);
  ASSERT_TRUE(out.leader.has_value());
  EXPECT_EQ(*out.leader, 0u);
}

TEST(Aggregate, TwoStationsFirstSlotIsAlwaysCollision) {
  // u = 0: both transmit with probability 1.
  Lesk lesk(0.5);
  Rng rng(3);
  auto adv = make_adversary(AdversarySpec{}, rng.child(1));
  Rng sim = rng.child(2);
  Trace trace;
  (void)run_aggregate(lesk, *adv, {2, 10}, sim, &trace);
  EXPECT_EQ(trace.records()[0].state, ChannelState::kCollision);
}

TEST(Aggregate, TraceEstimateAnnotated) {
  Lesk lesk(0.5);
  Rng rng(5);
  auto adv = make_adversary(AdversarySpec{}, rng.child(1));
  Rng sim = rng.child(2);
  Trace trace;
  const auto out = run_aggregate(lesk, *adv, {64, 100000}, sim, &trace);
  ASSERT_TRUE(out.elected);
  EXPECT_DOUBLE_EQ(trace.records()[0].estimate, 0.0);  // u starts at 0
  // Estimates never negative, and change by -1 or +1/16 steps.
  for (std::size_t k = 1; k < trace.records().size(); ++k) {
    const double prev = trace.records()[k - 1].estimate;
    const double cur = trace.records()[k].estimate;
    ASSERT_GE(cur, 0.0);
    ASSERT_LT(std::abs(cur - prev), 1.0 + 1e-9);
  }
}

TEST(Aggregate, JamsNeverProduceSingles) {
  Lesk lesk(0.5);
  Rng rng(7);
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 8;
  spec.eps = 0.5;
  spec.n = 64;
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  Trace trace;
  const auto out = run_aggregate(lesk, *adv, {64, 100000}, sim, &trace);
  ASSERT_TRUE(out.elected);
  for (const auto& rec : trace.records()) {
    if (rec.jammed) {
      ASSERT_EQ(rec.state, ChannelState::kCollision);
    }
  }
  EXPECT_EQ(out.jams, trace.counters().jammed);
}

TEST(Aggregate, EnergyIsExpectedTransmissions) {
  Lesk lesk(0.5);
  Rng rng(11);
  auto adv = make_adversary(AdversarySpec{}, rng.child(1));
  Rng sim = rng.child(2);
  const std::uint64_t n = 256;
  const auto out = run_aggregate(lesk, *adv, {n, 100000}, sim);
  ASSERT_TRUE(out.elected);
  // First slot contributes n * 1.0 alone.
  EXPECT_GE(out.transmissions, static_cast<double>(n));
}

TEST(Aggregate, SlotsScaleWithLogN) {
  // Crude shape check: mean slots at n = 2^18 is within ~3x of
  // (18/10) times the mean at n = 2^10.
  const auto mean_slots = [](std::uint64_t n, std::uint64_t seed0) {
    double total = 0;
    for (std::uint64_t s = 0; s < 30; ++s) {
      Lesk lesk(0.5);
      Rng rng(seed0 + s);
      auto adv = make_adversary(AdversarySpec{}, rng.child(1));
      Rng sim = rng.child(2);
      total += static_cast<double>(
          run_aggregate(lesk, *adv, {n, 1000000}, sim).slots);
    }
    return total / 30;
  };
  const double small = mean_slots(1 << 10, 100);
  const double big = mean_slots(1 << 18, 200);
  EXPECT_GT(big, small);
  EXPECT_LT(big, small * 3.0 * 18.0 / 10.0);
}

}  // namespace
}  // namespace jamelect
