// The batched cohort engine (sim/cohort_batch.hpp, McConfig::batch on
// run_cohort_mc) must return bit-identical per-trial TrialOutcomes to
// the sequential CohortEngine path for the same seed — for every
// paper kernel, both CD modes, any lane count, either lane-stepping
// mode, and any pool width. The AES-CTR backend is its own
// deterministic universe: outcomes must be invariant to lane count
// and partitioning against a one-lane reference. The memoized
// binomial plans must reproduce binomial_sample draw for draw in
// every regime, and cohort-cap overflow must retire lanes to a rerun
// that still matches the sequential engine.
#include "sim/cohort_batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "protocols/lewk.hpp"
#include "protocols/plain_uniform.hpp"
#include "protocols/uniform_station.hpp"
#include "sim/cohort.hpp"
#include "sim/montecarlo.hpp"
#include "support/binomial.hpp"
#include "support/binomial_cache.hpp"
#include "support/math.hpp"
#include "support/thread_pool.hpp"

namespace jamelect {
namespace {

void expect_outcome_eq(const TrialOutcome& a, const TrialOutcome& b,
                       std::size_t trial) {
  ASSERT_EQ(a.elected, b.elected) << "trial " << trial;
  ASSERT_EQ(a.slots, b.slots) << "trial " << trial;
  ASSERT_EQ(a.jams, b.jams) << "trial " << trial;
  ASSERT_EQ(a.nulls, b.nulls) << "trial " << trial;
  ASSERT_EQ(a.singles, b.singles) << "trial " << trial;
  ASSERT_EQ(a.collisions, b.collisions) << "trial " << trial;
  // Bit-identity, not approximate: the lane engine replays the exact
  // double arithmetic and draw order of the sequential path.
  ASSERT_EQ(a.transmissions, b.transmissions) << "trial " << trial;
  ASSERT_EQ(a.all_done, b.all_done) << "trial " << trial;
  ASSERT_EQ(a.unique_leader, b.unique_leader) << "trial " << trial;
  ASSERT_EQ(a.leader, b.leader) << "trial " << trial;
}

void expect_all_outcomes_eq(const McResult& a, const McResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t t = 0; t < a.outcomes.size(); ++t) {
    expect_outcome_eq(a.outcomes[t], b.outcomes[t], t);
  }
}

[[nodiscard]] McConfig base_config(std::size_t trials, std::uint64_t seed,
                                   std::int64_t max_slots) {
  McConfig config;
  config.trials = trials;
  config.seed = seed;
  config.max_slots = max_slots;
  config.parallel = false;
  config.keep_outcomes = true;
  return config;
}

struct Scenario {
  const char* name;
  std::function<StationProtocolPtr()> factory;
  AdversarySpec adversary;
  std::uint64_t n;
  EngineConfig engine;
};

[[nodiscard]] std::vector<Scenario> scenarios() {
  std::vector<Scenario> list;
  AdversarySpec none;
  AdversarySpec sat;
  sat.policy = "saturating";
  sat.T = 32;
  sat.eps = 0.5;
  AdversarySpec bern;
  bern.policy = "bernoulli";
  bern.T = 64;
  bern.eps = 0.25;
  list.push_back({"lesk_strong_alldone",
                  [] {
                    return std::make_unique<UniformStationAdapter>(
                        std::make_unique<Lesk>(LeskParams{0.5, 0.0}));
                  },
                  none, 64,
                  EngineConfig{CdMode::kStrong, StopRule::kAllDone, 20000}});
  list.push_back(
      {"lesk_strong_first_single_saturating",
       [] {
         return std::make_unique<UniformStationAdapter>(
             std::make_unique<Lesk>(LeskParams{0.25, 0.0}));
       },
       sat, 1024,
       EngineConfig{CdMode::kStrong, StopRule::kFirstSingle, 20000}});
  // Weak CD: Single slots split the transmitter from the frozen
  // listeners, so the cohort table actually grows and merges.
  list.push_back({"lesk_weak_alldone",
                  [] {
                    return std::make_unique<UniformStationAdapter>(
                        std::make_unique<Lesk>(LeskParams{0.5, 0.0}));
                  },
                  none, 64,
                  EngineConfig{CdMode::kWeak, StopRule::kAllDone, 2000}});
  list.push_back({"plain_uniform_first_single",
                  [] {
                    return std::make_unique<UniformStationAdapter>(
                        std::make_unique<PlainUniform>(PlainUniformParams{6.0}));
                  },
                  none, 64,
                  EngineConfig{CdMode::kStrong, StopRule::kFirstSingle, 20000}});
  list.push_back({"lesu_strong_alldone",
                  [] {
                    return std::make_unique<UniformStationAdapter>(
                        std::make_unique<Lesu>(LesuParams{}));
                  },
                  sat, 128,
                  EngineConfig{CdMode::kStrong, StopRule::kAllDone, 60000}});
  // Adaptive adversary: per-lane virtual adversaries must reproduce
  // the sequential per-trial feedback loop exactly.
  list.push_back({"lesk_strong_bernoulli",
                  [] {
                    return std::make_unique<UniformStationAdapter>(
                        std::make_unique<Lesk>(LeskParams{0.5, 0.0}));
                  },
                  bern, 128,
                  EngineConfig{CdMode::kStrong, StopRule::kAllDone, 20000}});
  return list;
}

constexpr std::size_t kLaneCounts[] = {1, 3, 4, 5, 7, 29};
constexpr BatchLaneMode kLaneModes[] = {BatchLaneMode::kAuto,
                                        BatchLaneMode::kScalarLanes};

TEST(CohortBatchEquivalence, XoshiroBitIdenticalAcrossLaneCountsAndModes) {
  for (const Scenario& sc : scenarios()) {
    SCOPED_TRACE(sc.name);
    const auto seq = run_cohort_mc(sc.factory, sc.adversary, sc.n, sc.engine,
                                   base_config(24, 991, sc.engine.max_slots));
    ASSERT_EQ(seq.outcomes.size(), 24u) << sc.name;
    for (const std::size_t lanes : kLaneCounts) {
      for (const BatchLaneMode mode : kLaneModes) {
        McConfig config = base_config(24, 991, sc.engine.max_slots);
        config.batch = lanes;
        config.batch_lanes = mode;
        const auto batched =
            run_cohort_mc(sc.factory, sc.adversary, sc.n, sc.engine, config);
        SCOPED_TRACE(lanes);
        expect_all_outcomes_eq(seq, batched);
      }
    }
  }
}

TEST(CohortBatchEquivalence, XoshiroBitIdenticalAcrossPoolWidths) {
  const Scenario sc = scenarios()[1];  // saturating jammer, n = 1024
  const auto seq = run_cohort_mc(sc.factory, sc.adversary, sc.n, sc.engine,
                                 base_config(30, 17, sc.engine.max_slots));
  for (const std::size_t workers : {1u, 3u, 8u}) {
    ThreadPool pool(workers);
    McConfig config = base_config(30, 17, sc.engine.max_slots);
    config.batch = 7;
    config.parallel = true;
    config.pool = &pool;
    const auto batched =
        run_cohort_mc(sc.factory, sc.adversary, sc.n, sc.engine, config);
    SCOPED_TRACE(workers);
    expect_all_outcomes_eq(seq, batched);
  }
}

TEST(CohortBatchEquivalence, AesCtrInvariantAcrossLaneCountsAndPools) {
  for (const Scenario& sc : scenarios()) {
    SCOPED_TRACE(sc.name);
    // One-lane reference defines the AES universe for this seed.
    McConfig ref_config = base_config(16, 313, sc.engine.max_slots);
    ref_config.batch = 1;
    ref_config.rng_backend = RngBackend::kAesCtr;
    const auto ref =
        run_cohort_mc(sc.factory, sc.adversary, sc.n, sc.engine, ref_config);
    ASSERT_EQ(ref.outcomes.size(), 16u) << sc.name;
    for (const std::size_t lanes : {3u, 29u}) {
      for (const BatchLaneMode mode : kLaneModes) {
        McConfig config = base_config(16, 313, sc.engine.max_slots);
        config.batch = lanes;
        config.batch_lanes = mode;
        config.rng_backend = RngBackend::kAesCtr;
        const auto batched =
            run_cohort_mc(sc.factory, sc.adversary, sc.n, sc.engine, config);
        SCOPED_TRACE(lanes);
        expect_all_outcomes_eq(ref, batched);
      }
    }
    ThreadPool pool(3);
    McConfig config = base_config(16, 313, sc.engine.max_slots);
    config.batch = 5;
    config.rng_backend = RngBackend::kAesCtr;
    config.parallel = true;
    config.pool = &pool;
    const auto batched =
        run_cohort_mc(sc.factory, sc.adversary, sc.n, sc.engine, config);
    expect_all_outcomes_eq(ref, batched);
  }
}

TEST(CohortBatchEquivalence, CohortCapOverflowRetiresToExactRerun) {
  // Weak-CD LESK splits on its first Single slot (done listeners vs
  // the lone live transmitter), so a cap-1 lane must overflow there
  // and retire to the scalar rerun — whose outcome still has to be
  // bit-identical to the sequential engine.
  const auto factory = [] {
    return std::make_unique<UniformStationAdapter>(
        std::make_unique<Lesk>(LeskParams{0.5, 0.0}));
  };
  const EngineConfig engine{CdMode::kWeak, StopRule::kAllDone, 2000};
  const std::uint64_t n = 64;
  constexpr std::size_t kTrials = 8;
  AdversarySpec spec;
  spec.n = n;

  // Prove the scenario actually exceeds the cap: the sequential engine
  // must see more than 1 simultaneous cohort in at least one trial.
  bool exceeded = false;
  for (std::size_t trial = 0; trial < kTrials && !exceeded; ++trial) {
    const Rng rng = Rng(733).child(trial);
    CohortEngine eng(factory(), n, make_adversary(spec, rng.child(0xad50)),
                     rng.child(0x51e0), engine);
    (void)eng.run();
    exceeded = eng.peak_cohorts() > 1;
  }
  ASSERT_TRUE(exceeded);

  const auto seq = run_cohort_mc(factory, spec, n, engine,
                                 base_config(kTrials, 733, engine.max_slots));
  const auto kernel = cohort_batch_spec(factory);
  ASSERT_TRUE(kernel.has_value());
  for (const BatchLaneMode mode : kLaneModes) {
    CohortBatchConfig config;
    config.n = n;
    config.max_slots = engine.max_slots;
    config.cd = engine.cd;
    config.stop = engine.stop;
    config.lanes = mode;
    config.cohort_cap = 1;
    std::vector<TrialOutcome> out(kTrials);
    run_cohort_batch_trials(*kernel, spec, config, Rng(733), 0, kTrials,
                            out.data());
    for (std::size_t t = 0; t < kTrials; ++t) {
      expect_outcome_eq(seq.outcomes[t], out[t], t);
    }
  }
}

TEST(CohortBatchEquivalence, NonKernelizablePrototypeFallsBackIdentically) {
  // LEWK's NotificationStation is not a UniformStationAdapter, so the
  // probe must refuse and the sweep must fall back to the sequential
  // engine — same outcomes as batch == 0.
  ASSERT_FALSE(
      cohort_batch_spec([] { return make_lewk_station(0.5); }).has_value());
  AdversarySpec none;
  const EngineConfig engine{CdMode::kWeak, StopRule::kFirstSingle, 20000};
  const auto seq = run_cohort_mc([] { return make_lewk_station(0.5); }, none,
                                 64, engine, base_config(12, 41, 20000));
  McConfig config = base_config(12, 41, 20000);
  config.batch = 8;
  const auto fell_back = run_cohort_mc([] { return make_lewk_station(0.5); },
                                       none, 64, engine, config);
  expect_all_outcomes_eq(seq, fell_back);
}

// ---------------------------------------------------------------------------
// Plan-level equivalence: the memoized sampler vs binomial_sample.
// ---------------------------------------------------------------------------

TEST(BinomialPlanEquivalence, PlanDrawsMatchSamplerBitForBitInEveryRegime) {
  struct Case {
    std::uint64_t n;
    double p;
  };
  const Case cases[] = {
      {0, 0.5},       // kZero: n == 0
      {200, 0.0},     // kZero: p == 0
      {200, 1.0},     // kAll
      {50, 0.3},      // loop
      {50, 0.7},      // loop, reflected
      {129, 0.2},     // inversion (mean 25.8)
      {1000, 0.01},   // inversion, long tail table
      {1000, 0.98},   // inversion, reflected (p_eff = 0.02)
      {1000, 0.2},    // BTPE
      {1000, 0.6},    // BTPE, reflected
      {100000, 0.4},  // BTPE, large n
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.n);
    SCOPED_TRACE(c.p);
    const BinomialPlan plan = build_binomial_plan(c.n, c.p);
    Rng seq(577);
    Rng planned(577);
    for (int i = 0; i < 3000; ++i) {
      ASSERT_EQ(binomial_sample(c.n, c.p, seq),
                binomial_plan_draw(plan, planned))
          << "draw " << i;
    }
    // Stream sync: both paths must have consumed the same uniforms.
    ASSERT_EQ(seq.uniform(), planned.uniform());
  }
}

TEST(BinomialPlanEquivalence, CacheDrawsMatchSamplerOnExponentLattice) {
  BinomialSamplerCache cache;
  cache.set_lattice_step(1.0);
  Rng seq(88);
  Rng cached(88);
  for (int round = 0; round < 200; ++round) {
    for (const double u : {0.0, 1.0, 4.0, 6.0, 9.5, 1100.0}) {
      const std::uint64_t n = 500;
      ASSERT_EQ(binomial_sample(n, transmit_probability(u), seq),
                binomial_plan_draw(cache.plan(n, u), cached))
          << "u=" << u;
    }
  }
  ASSERT_EQ(seq.uniform(), cached.uniform());
  // Six distinct (n, u) keys: one miss each, everything else cached,
  // and on-lattice keys answered by the dense index.
  EXPECT_EQ(cache.misses(), 6u);
  EXPECT_EQ(cache.lookups(), 1200u);
  EXPECT_GT(cache.dense_hits(), 900u);
}

TEST(BinomialPlanEquivalence, CachedDrawsFollowTheBinomialLaw) {
  // Chi-square pin of the memoized sampler against the exact pmf,
  // computed independently via lgamma (not the plan's own table).
  const std::uint64_t n = 500;
  const double u = 6.0;  // p = 2^-6, mean ~7.8: inversion regime
  const double p = transmit_probability(u);
  BinomialSamplerCache cache;
  cache.set_lattice_step(1.0);
  constexpr int kDraws = 10000;
  constexpr std::uint64_t kTail = 21;
  std::vector<double> counts(kTail + 1, 0.0);
  Rng rng(4242);
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t k = binomial_plan_draw(cache.plan(n, u), rng);
    counts[std::min(k, kTail)] += 1.0;
  }
  const double nd = static_cast<double>(n);
  std::vector<double> expected(kTail + 1, 0.0);
  double tail_mass = 1.0;
  for (std::uint64_t k = 0; k < kTail; ++k) {
    const double kd = static_cast<double>(k);
    const double log_pmf = std::lgamma(nd + 1.0) - std::lgamma(kd + 1.0) -
                           std::lgamma(nd - kd + 1.0) + kd * std::log(p) +
                           (nd - kd) * std::log1p(-p);
    expected[k] = std::exp(log_pmf) * kDraws;
    tail_mass -= std::exp(log_pmf);
  }
  expected[kTail] = tail_mass * kDraws;
  // Merge low-expectation bins (head and tail) so every cell has
  // expected count >= 5, then one-sample chi-square.
  double chi2 = 0.0;
  double merged_obs = 0.0;
  double merged_exp = 0.0;
  int cells = 0;
  for (std::size_t k = 0; k <= kTail; ++k) {
    merged_obs += counts[k];
    merged_exp += expected[k];
    if (merged_exp >= 5.0) {
      const double d = merged_obs - merged_exp;
      chi2 += d * d / merged_exp;
      ++cells;
      merged_obs = 0.0;
      merged_exp = 0.0;
    }
  }
  if (merged_exp > 0.0) {
    const double d = merged_obs - merged_exp;
    chi2 += d * d / merged_exp;
    ++cells;
  }
  ASSERT_GE(cells, 10);
  // 99.9th percentile of chi-square with ~17 df is ~40; the seed is
  // fixed, so this is a deterministic regression pin, not a flake.
  EXPECT_LT(chi2, 45.0);
}

}  // namespace
}  // namespace jamelect
