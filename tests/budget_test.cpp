#include "adversary/budget.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <tuple>
#include <vector>

#include "support/rng.hpp"

namespace jamelect {
namespace {

/// Brute-force admissibility: every window of length w >= T within the
/// schedule must contain at most (1-eps)*w jams (exact rational check).
bool schedule_admissible(const std::vector<bool>& jams, std::int64_t T,
                         EpsRatio eps) {
  const auto n = static_cast<std::int64_t>(jams.size());
  std::vector<std::int64_t> prefix(static_cast<std::size_t>(n) + 1, 0);
  for (std::int64_t i = 0; i < n; ++i) {
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + (jams[static_cast<std::size_t>(i)] ? 1 : 0);
  }
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t e = s + T; e <= n; ++e) {  // [s, e) with length >= T
      const std::int64_t w = e - s;
      const std::int64_t count =
          prefix[static_cast<std::size_t>(e)] - prefix[static_cast<std::size_t>(s)];
      // count <= (1 - num/den) * w  <=>  count*den <= (den-num)*w
      if (count * eps.den > (eps.den - eps.num) * w) return false;
    }
  }
  return true;
}

TEST(EpsRatio, FromDouble) {
  const auto half = EpsRatio::from_double(0.5, 1000);
  EXPECT_DOUBLE_EQ(half.value(), 0.5);
  const auto third = EpsRatio::from_double(1.0 / 3.0, 3);
  EXPECT_EQ(third.num, 1);
  EXPECT_EQ(third.den, 3);
  const auto one = EpsRatio::from_double(1.0);
  EXPECT_DOUBLE_EQ(one.value(), 1.0);
  EXPECT_THROW((void)EpsRatio::from_double(0.0), ContractViolation);
  EXPECT_THROW((void)EpsRatio::from_double(1.5), ContractViolation);
}

TEST(JammingBudget, EpsOneForbidsAllJamsFromTheStart) {
  // (T, 0)-bounded: zero jams allowed in any window >= T; since a jam
  // now would sit inside a future window, can_jam() must already be
  // false at slot 0.
  JammingBudget b(4, {1, 1});
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(b.can_jam());
    b.commit(false);
  }
}

TEST(JammingBudget, TEqualsOneWithFractionalEpsForbidsJams) {
  // Any single slot is a window of length 1 >= T: jams <= (1-eps) < 1.
  JammingBudget b(1, {1, 2});
  EXPECT_FALSE(b.can_jam());
}

TEST(JammingBudget, GreedySmallWindowIntegrality) {
  // T = 2, eps = 1/2: the binding constraint is the 3-slot window,
  // which caps at floor(1.5) = 1 jam — so greedy realizes a jam every
  // third slot (0, 3, 6, ...), density 1/3, not 1/2. With larger T the
  // integrality loss vanishes (see next test).
  JammingBudget b(2, {1, 2});
  std::int64_t jams = 0;
  std::vector<bool> sched;
  for (int i = 0; i < 1000; ++i) {
    const bool jam = b.can_jam();
    b.commit(jam);
    sched.push_back(jam);
    jams += jam ? 1 : 0;
  }
  EXPECT_EQ(jams, 334);
  EXPECT_TRUE(sched[0]);
  EXPECT_TRUE(sched[3]);
  EXPECT_FALSE(sched[1]);
  EXPECT_FALSE(sched[2]);
  EXPECT_EQ(b.slots(), 1000);
}

TEST(JammingBudget, GreedyDensityApproachesOneMinusEpsForLargeT) {
  JammingBudget b(128, {1, 2});
  std::int64_t jams = 0;
  constexpr int kLen = 10000;
  for (int i = 0; i < kLen; ++i) {
    const bool jam = b.can_jam();
    b.commit(jam);
    jams += jam ? 1 : 0;
  }
  const double density = static_cast<double>(jams) / kLen;
  EXPECT_GT(density, 0.47);
  EXPECT_LE(density, 0.5);
}

TEST(JammingBudget, ShortBurstsUpToBudgetAllowed) {
  // T = 8, eps = 1/4: up to 6 jams per 8-window. The greedy front-load
  // can jam 6 consecutive slots immediately (a burst shorter than T),
  // exactly the "short windows may be fully jammed" clause.
  JammingBudget b(8, {1, 4});
  int streak = 0;
  while (b.can_jam()) {
    b.commit(true);
    ++streak;
  }
  EXPECT_EQ(streak, 6);
}

TEST(JammingBudget, CommittingIllegalJamThrows) {
  JammingBudget b(2, {1, 2});
  b.commit(true);  // legal: 1 jam in the first 2-window
  EXPECT_FALSE(b.can_jam());
  EXPECT_THROW(b.commit(true), ContractViolation);
}

TEST(JammingBudget, RejectsBadConstruction) {
  EXPECT_THROW(JammingBudget(0, {1, 2}), ContractViolation);
  EXPECT_THROW(JammingBudget(4, {0, 2}), ContractViolation);
  EXPECT_THROW(JammingBudget(4, {3, 2}), ContractViolation);
}

TEST(JammingBudget, WindowCounterTracksLastT) {
  JammingBudget b(4, {1, 2});
  b.commit(true);
  b.commit(true);
  b.commit(false);
  b.commit(false);
  EXPECT_EQ(b.jams_in_last_T(), 2);
  b.commit(false);
  b.commit(false);
  EXPECT_EQ(b.jams_in_last_T(), 0);
}

// Property suite: a greedy saturating adversary over (T, eps) yields an
// admissible schedule that brute force confirms, and achieves at least
// floor((1-eps)*len) - (den) jams overall (it wastes nothing).
class BudgetProperty
    : public ::testing::TestWithParam<std::tuple<std::int64_t, EpsRatio>> {};

TEST_P(BudgetProperty, GreedyScheduleIsAdmissibleAndDominatesRandom) {
  const auto [T, eps] = GetParam();
  constexpr std::int64_t kLen = 300;
  JammingBudget greedy(T, eps);
  std::vector<bool> schedule;
  for (std::int64_t i = 0; i < kLen; ++i) {
    const bool jam = greedy.can_jam();
    greedy.commit(jam);
    schedule.push_back(jam);
  }
  EXPECT_TRUE(schedule_admissible(schedule, T, eps));
  // Never exceeds the global cap...
  EXPECT_LE(greedy.jams() * eps.den, (eps.den - eps.num) * kLen + eps.den);
  // ...and front-loaded greed never jams less than a random requester.
  Rng rng(0x9e3779);
  JammingBudget lazy(T, eps);
  for (std::int64_t i = 0; i < kLen; ++i) {
    lazy.commit(rng.bernoulli(0.5) && lazy.can_jam());
  }
  EXPECT_GE(greedy.jams(), lazy.jams());
}

TEST_P(BudgetProperty, RandomRequestsNeverProduceViolations) {
  const auto [T, eps] = GetParam();
  Rng rng(0xb0d6e7 + static_cast<std::uint64_t>(T));
  JammingBudget b(T, eps);
  std::vector<bool> schedule;
  for (int i = 0; i < 400; ++i) {
    const bool want = rng.bernoulli(0.7);
    const bool jam = want && b.can_jam();
    b.commit(jam);
    schedule.push_back(jam);
  }
  EXPECT_TRUE(schedule_admissible(schedule, T, eps));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BudgetProperty,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 3, 5, 8, 16, 64),
                       ::testing::Values(EpsRatio{1, 2}, EpsRatio{1, 4},
                                         EpsRatio{3, 4}, EpsRatio{1, 10},
                                         EpsRatio{9, 10}, EpsRatio{1, 1})));

}  // namespace
}  // namespace jamelect
