#include "protocols/interval_partition.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <map>

namespace jamelect {
namespace {

TEST(Partition, PaddingSlots) {
  for (Slot s : {0, 1, 2}) {
    const auto pos = classify_slot(s);
    EXPECT_EQ(pos.set, IntervalSet::kPadding) << s;
    EXPECT_FALSE(pos.interval_start());
  }
  EXPECT_THROW((void)classify_slot(-1), ContractViolation);
}

TEST(Partition, PaperBlockOne) {
  // C^1_1 = {3,4}, C^1_2 = {5,6}, C^1_3 = {7,8}.
  for (Slot s : {3, 4}) EXPECT_EQ(classify_slot(s).set, IntervalSet::kC1) << s;
  for (Slot s : {5, 6}) EXPECT_EQ(classify_slot(s).set, IntervalSet::kC2) << s;
  for (Slot s : {7, 8}) EXPECT_EQ(classify_slot(s).set, IntervalSet::kC3) << s;
  EXPECT_EQ(classify_slot(3).block, 1);
  EXPECT_EQ(classify_slot(3).size, 2);
  EXPECT_TRUE(classify_slot(3).interval_start());
  EXPECT_FALSE(classify_slot(4).interval_start());
}

TEST(Partition, PaperBlockTwo) {
  // C^2_1 = {9..12}, C^2_2 = {13..16}, C^2_3 = {17..20}.
  EXPECT_EQ(classify_slot(9).set, IntervalSet::kC1);
  EXPECT_TRUE(classify_slot(9).interval_start());
  EXPECT_EQ(classify_slot(12).set, IntervalSet::kC1);
  EXPECT_EQ(classify_slot(13).set, IntervalSet::kC2);
  EXPECT_EQ(classify_slot(16).set, IntervalSet::kC2);
  EXPECT_EQ(classify_slot(17).set, IntervalSet::kC3);
  EXPECT_EQ(classify_slot(20).set, IntervalSet::kC3);
  EXPECT_EQ(classify_slot(20).block, 2);
  EXPECT_EQ(classify_slot(20).size, 4);
  EXPECT_EQ(classify_slot(20).offset, 3);
}

TEST(Partition, FirstAndEndSlotFormulas) {
  EXPECT_EQ(interval_first_slot(1, IntervalSet::kC1), 3);
  EXPECT_EQ(interval_first_slot(1, IntervalSet::kC2), 5);
  EXPECT_EQ(interval_first_slot(1, IntervalSet::kC3), 7);
  EXPECT_EQ(interval_first_slot(2, IntervalSet::kC1), 9);
  EXPECT_EQ(interval_end_slot(2, IntervalSet::kC3), 21);
  EXPECT_EQ(interval_first_slot(3, IntervalSet::kC1), 21);  // blocks tile
  EXPECT_THROW((void)interval_first_slot(0, IntervalSet::kC1),
               ContractViolation);
  EXPECT_THROW((void)interval_first_slot(1, IntervalSet::kPadding),
               ContractViolation);
}

TEST(Partition, TilesTheLineExactly) {
  // Every slot in [3, 3000) belongs to exactly one interval, intervals
  // are contiguous runs of 2^i slots, and consecutive blocks abut.
  Slot expected_next_start = 3;
  for (std::int64_t i = 1; expected_next_start < 3000; ++i) {
    for (auto set : {IntervalSet::kC1, IntervalSet::kC2, IntervalSet::kC3}) {
      EXPECT_EQ(interval_first_slot(i, set), expected_next_start);
      expected_next_start = interval_end_slot(i, set);
    }
  }
}

TEST(Partition, ClassifyAgreesWithFormulasEverywhere) {
  for (Slot s = 3; s < 5000; ++s) {
    const auto pos = classify_slot(s);
    ASSERT_NE(pos.set, IntervalSet::kPadding) << s;
    ASSERT_EQ(interval_first_slot(pos.block, pos.set) + pos.offset, s) << s;
    ASSERT_LT(pos.offset, pos.size) << s;
    ASSERT_GE(pos.offset, 0) << s;
    ASSERT_EQ(pos.size, std::int64_t{1} << pos.block) << s;
  }
}

TEST(Partition, EachSetGetsEqualShareWithinABlock) {
  std::map<IntervalSet, std::int64_t> count;
  for (Slot s = interval_first_slot(5, IntervalSet::kC1);
       s < interval_end_slot(5, IntervalSet::kC3); ++s) {
    ++count[classify_slot(s).set];
  }
  EXPECT_EQ(count[IntervalSet::kC1], 32);
  EXPECT_EQ(count[IntervalSet::kC2], 32);
  EXPECT_EQ(count[IntervalSet::kC3], 32);
}

TEST(Partition, IntervalStartsAreExactlyTheFormulaPoints) {
  std::int64_t starts_seen = 0;
  for (Slot s = 0; s < 2000; ++s) {
    if (classify_slot(s).interval_start()) ++starts_seen;
  }
  // Blocks 1..9 fit below 2000 partially; count starts of all intervals
  // whose first slot is < 2000.
  std::int64_t expected = 0;
  for (std::int64_t i = 1; i <= 10; ++i) {
    for (auto set : {IntervalSet::kC1, IntervalSet::kC2, IntervalSet::kC3}) {
      if (interval_first_slot(i, set) < 2000) ++expected;
    }
  }
  EXPECT_EQ(starts_seen, expected);
}

TEST(Partition, LargeSlotsDoNotOverflow) {
  const Slot huge = (std::int64_t{1} << 40) + 12345;
  const auto pos = classify_slot(huge);
  EXPECT_NE(pos.set, IntervalSet::kPadding);
  EXPECT_EQ(interval_first_slot(pos.block, pos.set) + pos.offset, huge);
}

}  // namespace
}  // namespace jamelect
