#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <memory>

#include "protocols/lesk.hpp"
#include "protocols/uniform_station.hpp"
#include "sim/adversary_spec.hpp"

namespace jamelect {
namespace {

std::vector<StationProtocolPtr> lesk_stations(std::uint64_t n, double eps) {
  std::vector<StationProtocolPtr> stations;
  for (std::uint64_t i = 0; i < n; ++i) {
    stations.push_back(
        std::make_unique<UniformStationAdapter>(std::make_unique<Lesk>(eps)));
  }
  return stations;
}

std::unique_ptr<BoundedAdversary> no_adversary(Rng rng) {
  return make_adversary(AdversarySpec{}, rng);
}

TEST(SlotEngine, RejectsEmptyNetworkAndNullAdversary) {
  Rng rng(1);
  EXPECT_THROW(SlotEngine({}, no_adversary(rng), rng, {}), ContractViolation);
  EXPECT_THROW(SlotEngine(lesk_stations(2, 0.5), nullptr, rng, {}),
               ContractViolation);
}

TEST(SlotEngine, StrongCdLeskElectsUniqueLeader) {
  Rng rng(7);
  SlotEngine eng(lesk_stations(16, 0.5), no_adversary(rng.child(1)),
                 rng.child(2), {CdMode::kStrong, StopRule::kAllDone, 100000});
  const auto out = eng.run();
  EXPECT_TRUE(out.elected);
  EXPECT_TRUE(out.unique_leader);
  EXPECT_TRUE(out.all_done);
  ASSERT_TRUE(out.leader.has_value());
  EXPECT_LT(*out.leader, 16u);
  EXPECT_EQ(out.singles, 1);
}

TEST(SlotEngine, SingleStationElectsItself) {
  Rng rng(3);
  SlotEngine eng(lesk_stations(1, 0.5), no_adversary(rng.child(1)),
                 rng.child(2), {CdMode::kStrong, StopRule::kAllDone, 100});
  const auto out = eng.run();
  EXPECT_TRUE(out.elected);
  EXPECT_EQ(out.slots, 1);
  EXPECT_EQ(*out.leader, 0u);
}

TEST(SlotEngine, WeakCdBareLeskNeverCompletesElection) {
  // Without Notification, the weak-CD transmitter cannot learn of its
  // own success: kAllDone never triggers (the run hits the budget), but
  // the first Single still occurs (kFirstSingle sees it).
  Rng rng(9);
  SlotEngine eng(lesk_stations(8, 0.5), no_adversary(rng.child(1)),
                 rng.child(2), {CdMode::kWeak, StopRule::kAllDone, 3000});
  const auto out = eng.run();
  EXPECT_FALSE(out.elected);
  EXPECT_FALSE(out.all_done);
  EXPECT_GE(out.singles, 1);  // selection resolution did happen

  Rng rng2(9);
  SlotEngine eng2(lesk_stations(8, 0.5), no_adversary(rng2.child(1)),
                  rng2.child(2), {CdMode::kWeak, StopRule::kFirstSingle, 3000});
  const auto out2 = eng2.run();
  EXPECT_TRUE(out2.elected);
  EXPECT_TRUE(out2.leader.has_value());
}

TEST(SlotEngine, DeterministicBySeed) {
  const auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    SlotEngine eng(lesk_stations(32, 0.5), no_adversary(rng.child(1)),
                   rng.child(2), {CdMode::kStrong, StopRule::kAllDone, 100000});
    return eng.run();
  };
  const auto a = run_once(1234);
  const auto b = run_once(1234);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.nulls, b.nulls);
  const auto c = run_once(4321);
  EXPECT_TRUE(c.slots != a.slots || c.leader != a.leader || c.nulls != a.nulls);
}

TEST(SlotEngine, TransmissionCountsMatchOutcome) {
  Rng rng(17);
  SlotEngine eng(lesk_stations(8, 0.5), no_adversary(rng.child(1)),
                 rng.child(2), {CdMode::kStrong, StopRule::kAllDone, 100000});
  const auto out = eng.run();
  ASSERT_TRUE(out.elected);
  const auto& per_station = eng.transmissions_per_station();
  std::int64_t total = 0;
  for (auto t : per_station) total += t;
  EXPECT_DOUBLE_EQ(static_cast<double>(total), out.transmissions);
  EXPECT_GT(total, 0);
}

TEST(SlotEngine, TraceMatchesOutcomeCounters) {
  Rng rng(21);
  Trace trace;
  SlotEngine eng(lesk_stations(8, 0.5), no_adversary(rng.child(1)),
                 rng.child(2), {CdMode::kStrong, StopRule::kAllDone, 100000});
  const auto out = eng.run(&trace);
  EXPECT_EQ(trace.counters().slots, out.slots);
  EXPECT_EQ(trace.counters().singles, out.singles);
  EXPECT_EQ(trace.counters().nulls, out.nulls);
  EXPECT_EQ(trace.counters().collisions, out.collisions);
  // The final recorded slot is the deciding Single with one transmitter.
  const auto& last = trace.records().back();
  EXPECT_EQ(last.state, ChannelState::kSingle);
  EXPECT_EQ(last.transmitters, 1u);
}

TEST(SlotEngine, JammedSlotsAppearInOutcome) {
  Rng rng(23);
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 16;
  spec.eps = 0.5;
  spec.n = 8;
  SlotEngine eng(lesk_stations(8, 0.5), make_adversary(spec, rng.child(1)),
                 rng.child(2), {CdMode::kStrong, StopRule::kAllDone, 100000});
  const auto out = eng.run();
  EXPECT_TRUE(out.elected);
  EXPECT_GT(out.jams, 0);
  EXPECT_LE(out.jams, out.collisions);  // every jam reads as Collision
}

TEST(SlotEngine, BudgetExhaustionReportsFailure) {
  Rng rng(29);
  SlotEngine eng(lesk_stations(1 << 12, 0.5), no_adversary(rng.child(1)),
                 rng.child(2), {CdMode::kStrong, StopRule::kAllDone, 3});
  const auto out = eng.run();
  EXPECT_FALSE(out.elected);
  EXPECT_EQ(out.slots, 3);
}

}  // namespace
}  // namespace jamelect
