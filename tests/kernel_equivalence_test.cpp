// Locks each POD kernel (protocols/kernels.hpp) to its virtual protocol
// class, bit for bit: driven with the same observation stream, the
// kernel must report the same transmit probability (to the exact double)
// and the same election/phase state at every step. This is the oracle
// the batched Monte-Carlo engine's bit-identity contract rests on.
#include "protocols/kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "protocols/estimation.hpp"
#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "protocols/plain_uniform.hpp"
#include "sim/batch.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

using kernels::EstimationKernel;
using kernels::LeskKernel;
using kernels::LesuKernel;
using kernels::UniformKernel;

[[nodiscard]] std::uint64_t bits(double x) {
  return std::bit_cast<std::uint64_t>(x);
}

/// Null/Collision streams keep a protocol alive indefinitely (a Single
/// would elect it); `null_weight` in [0, 1] sets the Null fraction.
[[nodiscard]] std::vector<ChannelState> alive_stream(std::uint64_t seed,
                                                     std::size_t len,
                                                     double null_weight) {
  Rng rng(seed);
  std::vector<ChannelState> stream;
  stream.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    stream.push_back(rng.bernoulli(null_weight) ? ChannelState::kNull
                                                : ChannelState::kCollision);
  }
  return stream;
}

TEST(KernelEquivalence, LeskMatchesClassOnRandomStreams) {
  for (const double eps : {1.0, 0.5, 0.25, 0.1, 1.0 / 3.0}) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      const LeskParams params{eps, 0.0};
      Lesk cls(params);
      LeskKernel kern(params);
      for (const ChannelState s : alive_stream(seed, 4096, 0.45)) {
        ASSERT_EQ(bits(cls.transmit_probability()),
                  bits(transmit_probability(kern.broadcast_u())));
        ASSERT_EQ(bits(cls.u()), bits(kern.u));
        cls.observe(s);
        kern.step(s);
        ASSERT_EQ(cls.elected(), kern.done());
      }
      cls.observe(ChannelState::kSingle);
      kern.step(ChannelState::kSingle);
      EXPECT_TRUE(cls.elected());
      EXPECT_TRUE(kern.done());
    }
  }
}

TEST(KernelEquivalence, LeskMatchesClassFromWarmStart) {
  const LeskParams params{0.5, 7.25};
  Lesk cls(params);
  LeskKernel kern(params);
  for (const ChannelState s : alive_stream(11, 512, 0.7)) {
    ASSERT_EQ(bits(cls.u()), bits(kern.u));
    cls.observe(s);
    kern.step(s);
  }
}

TEST(KernelEquivalence, LeskNullFloorAtZeroIsExact) {
  // u = 1.0 - 1.0 hits the max(u - 1, 0) floor exactly; the kernel must
  // produce the identical double (and never a -0.0 surprise).
  const LeskParams params{0.5, 1.0};
  Lesk cls(params);
  LeskKernel kern(params);
  cls.observe(ChannelState::kNull);
  kern.step(ChannelState::kNull);
  EXPECT_EQ(bits(cls.u()), bits(kern.u));
  cls.observe(ChannelState::kNull);  // already at the floor
  kern.step(ChannelState::kNull);
  EXPECT_EQ(bits(cls.u()), bits(kern.u));
}

TEST(KernelEquivalence, EstimationMatchesClassThroughRounds) {
  for (const std::int64_t L : {1LL, 2LL, 3LL}) {
    for (const std::uint64_t seed : {5ULL, 6ULL}) {
      Estimation cls(L);
      EstimationKernel kern(L);
      for (const ChannelState s : alive_stream(seed, 600, 0.3)) {
        if (cls.completed()) break;
        ASSERT_EQ(bits(cls.transmit_probability()),
                  bits(transmit_probability(kern.broadcast_u())));
        ASSERT_EQ(cls.round(), kern.round);
        cls.observe(s);
        kern.step(s);
        ASSERT_EQ(cls.completed(), kern.completed);
        ASSERT_EQ(cls.elected(), kern.elected);
      }
      EXPECT_EQ(cls.completed(), kern.completed);
      if (cls.completed()) {
        EXPECT_EQ(cls.result(), kern.round);
      }
    }
  }
}

TEST(KernelEquivalence, EstimationElectsOnSingle) {
  Estimation cls(2);
  EstimationKernel kern(2);
  cls.observe(ChannelState::kSingle);
  kern.step(ChannelState::kSingle);
  EXPECT_TRUE(cls.elected());
  EXPECT_TRUE(kern.done());
}

TEST(KernelEquivalence, LesuMatchesClassAcrossPhasesAndSubexecutions) {
  // An all-Null opening completes Estimation quickly; long
  // Null/Collision tails then walk through many (i, j) sub-executions.
  for (const double null_weight : {0.9, 0.5, 0.2}) {
    for (const std::uint64_t seed : {21ULL, 22ULL}) {
      const LesuParams params{};  // defaults: c = 6, L = 2, max_i = 60
      Lesu cls(params);
      LesuKernel kern(params);
      std::size_t subexec_changes = 0;
      std::int64_t last_j = 0;
      for (const ChannelState s : alive_stream(seed, 60000, null_weight)) {
        ASSERT_EQ(bits(cls.transmit_probability()),
                  bits(transmit_probability(kern.broadcast_u())));
        ASSERT_EQ(bits(cls.estimate()), bits(kern.estimate()));
        cls.observe(s);
        kern.step(s);
        ASSERT_EQ(cls.phase() == Lesu::Phase::kLesk, kern.lesk_phase);
        ASSERT_EQ(cls.elected(), kern.done());
        ASSERT_EQ(cls.i(), kern.i);
        ASSERT_EQ(cls.j(), kern.j);
        ASSERT_EQ(bits(cls.t0()), bits(kern.t0));
        ASSERT_EQ(bits(cls.current_eps()), bits(kern.current_eps));
        if (kern.lesk_phase && kern.j != last_j) {
          ++subexec_changes;
          last_j = kern.j;
        }
      }
      // The stream must actually exercise the schedule machinery.
      EXPECT_TRUE(kern.lesk_phase);
      EXPECT_GE(subexec_changes, 2u);
    }
  }
}

TEST(KernelEquivalence, PlainUniformMatchesClass) {
  for (const double u : {0.0, 1.0, 10.5}) {
    const PlainUniformParams params{u};
    PlainUniform cls(params);
    UniformKernel kern(params);
    for (const ChannelState s : alive_stream(31, 64, 0.5)) {
      ASSERT_EQ(bits(cls.transmit_probability()),
                bits(transmit_probability(kern.broadcast_u())));
      cls.observe(s);
      kern.step(s);
      ASSERT_FALSE(kern.done());
    }
    cls.observe(ChannelState::kSingle);
    kern.step(ChannelState::kSingle);
    EXPECT_TRUE(cls.elected());
    EXPECT_TRUE(kern.done());
  }
}

// --- batch_kernel_spec probing -------------------------------------

TEST(BatchKernelSpec, RecognizesFreshKernelizableProtocols) {
  const Lesk lesk(LeskParams{0.25, 0.0});
  const auto lesk_spec = batch_kernel_spec(lesk);
  ASSERT_TRUE(lesk_spec.has_value());
  ASSERT_TRUE(std::holds_alternative<LeskParams>(*lesk_spec));
  EXPECT_EQ(std::get<LeskParams>(*lesk_spec).eps, 0.25);

  const Lesu lesu(LesuParams{});
  const auto lesu_spec = batch_kernel_spec(lesu);
  ASSERT_TRUE(lesu_spec.has_value());
  EXPECT_TRUE(std::holds_alternative<LesuParams>(*lesu_spec));

  const PlainUniform uni(PlainUniformParams{3.0});
  const auto uni_spec = batch_kernel_spec(uni);
  ASSERT_TRUE(uni_spec.has_value());
  EXPECT_TRUE(std::holds_alternative<PlainUniformParams>(*uni_spec));
}

TEST(BatchKernelSpec, RejectsWarmStartedInstances) {
  // Kernels always start fresh from params; an instance whose state has
  // already moved must fall back to the virtual path.
  Lesk warm(LeskParams{0.5, 0.0});
  warm.observe(ChannelState::kCollision);
  EXPECT_FALSE(batch_kernel_spec(warm).has_value());

  Lesu warm_lesu(LesuParams{});
  warm_lesu.observe(ChannelState::kNull);
  EXPECT_FALSE(batch_kernel_spec(warm_lesu).has_value());
}

TEST(BatchKernelSpec, RejectsProtocolsWithoutKernels) {
  const Estimation est(2);
  EXPECT_FALSE(batch_kernel_spec(est).has_value());
}

}  // namespace
}  // namespace jamelect
