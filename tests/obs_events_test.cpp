#include "obs/events.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/observer.hpp"

namespace jamelect::obs {
namespace {

Event slot_event() {
  Event e;
  e.kind = EventKind::kSlot;
  e.trial = 3;
  e.slot = 128;
  e.state = ChannelState::kSingle;
  e.transmitters = 1;
  e.jammed = false;
  e.estimate = 16.0;
  e.expected_tx = 1.25;
  e.jams_total = 7;
  e.budget_spend = 0.5;
  return e;
}

TEST(Events, SlotEventSerializesAllFields) {
  const std::string json = NdjsonSink::to_json(slot_event());
  EXPECT_EQ(json,
            "{\"ev\":\"slot\",\"trial\":3,\"slot\":128,\"state\":\"Single\","
            "\"tx\":1,\"jam\":false,\"u\":16,\"etx\":1.25,\"jams\":7,"
            "\"spend\":0.5}");
}

TEST(Events, NanSerializesAsNull) {
  Event e = slot_event();
  e.estimate = std::numeric_limits<double>::quiet_NaN();
  const std::string json = NdjsonSink::to_json(e);
  EXPECT_NE(json.find("\"u\":null"), std::string::npos) << json;
}

TEST(Events, PhaseCohortAndTrialEventsSerialize) {
  Event p;
  p.kind = EventKind::kPhase;
  p.trial = 1;
  p.slot = 42;
  p.protocol = "LESU";
  p.phase = "subexec";
  p.phase_i = 2;
  p.phase_j = 3;
  p.phase_eps = 0.125;
  EXPECT_EQ(NdjsonSink::to_json(p),
            "{\"ev\":\"phase\",\"trial\":1,\"slot\":42,\"proto\":\"LESU\","
            "\"phase\":\"subexec\",\"i\":2,\"j\":3,\"eps\":0.125}");

  Event c;
  c.kind = EventKind::kCohort;
  c.trial = 0;
  c.slot = 9;
  c.cohort_op = "split";
  c.cohort_from = 64;
  c.cohort_to = 1;
  c.cohorts_live = 2;
  EXPECT_EQ(NdjsonSink::to_json(c),
            "{\"ev\":\"cohort\",\"trial\":0,\"slot\":9,\"op\":\"split\","
            "\"from\":64,\"to\":1,\"live\":2}");

  Event s;
  s.kind = EventKind::kTrialStart;
  s.trial = 5;
  EXPECT_EQ(NdjsonSink::to_json(s),
            "{\"ev\":\"trial_start\",\"trial\":5,\"slot\":0}");

  Event t;
  t.kind = EventKind::kTrialEnd;
  t.trial = 5;
  t.slot = 77;
  t.elected = true;
  t.slots_total = 78;
  t.jams_total = 10;
  t.transmissions = 123.5;
  EXPECT_EQ(NdjsonSink::to_json(t),
            "{\"ev\":\"trial_end\",\"trial\":5,\"slot\":77,\"elected\":true,"
            "\"slots\":78,\"jams\":10,\"transmissions\":123.5}");
}

TEST(Events, NdjsonSinkWritesOneLinePerEvent) {
  std::ostringstream out;
  NdjsonSink sink(out);
  sink.on_event(slot_event());
  sink.on_event(slot_event());
  sink.flush();  // lines are batched until flush() or destruction
  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char ch : text) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(text.find('{'), 0u);
}

TEST(Events, VectorSinkCapturesAndClears) {
  VectorSink sink;
  sink.on_event(slot_event());
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].slot, 128);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(Observer, SamplesSlotsButKeepsSingles) {
  VectorSink sink;
  RunObserver obs(sink, {/*slot_sample_period=*/10});
  obs.begin_trial(0);
  for (Slot s = 0; s < 25; ++s) {
    const ChannelState state =
        s == 13 ? ChannelState::kSingle : ChannelState::kNull;
    obs.on_slot(s, state, state == ChannelState::kSingle ? 1 : 0, false, 1.0,
                0.5, 0, 0.0);
  }
  const auto events = sink.events();
  std::vector<Slot> slots;
  for (const Event& e : events) {
    if (e.kind == EventKind::kSlot) slots.push_back(e.slot);
  }
  // Slots 0, 10, 20 by the period; 13 because it is a Single.
  EXPECT_EQ(slots, (std::vector<Slot>{0, 10, 13, 20}));
}

TEST(Observer, PeriodOneEmitsEverySlot) {
  VectorSink sink;
  RunObserver obs(sink, {1});
  obs.begin_trial(2);
  for (Slot s = 0; s < 7; ++s) {
    obs.on_slot(s, ChannelState::kCollision, 2, true, 4.0, 2.0, s + 1, 0.1);
  }
  std::size_t slot_events = 0;
  for (const Event& e : sink.events()) {
    if (e.kind == EventKind::kSlot) {
      ++slot_events;
      EXPECT_EQ(e.trial, 2u);
    }
  }
  EXPECT_EQ(slot_events, 7u);
}

TEST(Observer, PhaseEventsCarryCurrentTrialAndSlot) {
  VectorSink sink;
  RunObserver obs(sink, {1000});  // sample out almost every slot event
  obs.begin_trial(4);
  obs.on_slot(17, ChannelState::kNull, 0, false, 1.0, 0.5, 0, 0.0);
  obs.on_protocol_phase("LESK", "elected", 0, 0, 0.5);
  obs.end_trial(true, 18, 0, 9.0);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 3u);  // trial_start, phase, trial_end
  EXPECT_EQ(events[1].kind, EventKind::kPhase);
  EXPECT_EQ(events[1].trial, 4u);
  EXPECT_EQ(events[1].slot, 17);  // stamped from the slot cursor
  EXPECT_STREQ(events[1].protocol, "LESK");
  EXPECT_EQ(events[2].kind, EventKind::kTrialEnd);
  EXPECT_TRUE(events[2].elected);
}

}  // namespace
}  // namespace jamelect::obs
