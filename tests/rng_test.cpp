#include "support/rng.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <array>
#include <limits>
#include <set>
#include <vector>

namespace jamelect {
namespace {

TEST(SplitMix64, MatchesReferenceVector) {
  // Canonical splitmix64.c outputs for seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(42, 7), mix64(42, 7));
}

TEST(Mix64, SensitiveToBothArguments) {
  EXPECT_NE(mix64(42, 7), mix64(42, 8));
  EXPECT_NE(mix64(42, 7), mix64(43, 7));
  EXPECT_NE(mix64(42, 7), mix64(7, 42));  // not symmetric
}

TEST(Xoshiro, DeterministicBySeed) {
  Xoshiro256StarStar a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, SeedsProduceDifferentStreams) {
  Xoshiro256StarStar a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliRateMatches) {
  Rng rng(5);
  constexpr int kN = 200000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(13);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(19);
  std::array<int, 7> buckets{};
  constexpr int kN = 70000;
  for (int i = 0; i < kN; ++i) ++buckets[rng.below(7)];
  for (int b : buckets) EXPECT_NEAR(b, kN / 7, 500);
}

TEST(Rng, BelowRejectsZeroBound) {
  Rng rng(23);
  EXPECT_THROW((void)rng.below(0), ContractViolation);
}

TEST(Rng, BelowPowerOfTwoUsesMaskSemantics) {
  // Power-of-two bounds take the single-draw mask fast path: the
  // result must be exactly next_u64() & (bound - 1) of a twin stream.
  for (const std::uint64_t bound :
       {2ULL, 8ULL, 1024ULL, 1ULL << 40, 1ULL << 63}) {
    Rng a(47), b(47);
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(a.below(bound), b.next_u64() & (bound - 1));
    }
  }
}

TEST(Rng, BelowNonPowerOfTwoStaysInRangeAtExtremes) {
  Rng rng(53);
  // Largest non-power-of-two bounds force the rejection path to matter.
  for (const std::uint64_t bound :
       {3ULL, (1ULL << 63) + 1, ~0ULL, ~0ULL - 1}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BetweenFullInt64SpanDoesNotOverflow) {
  // [INT64_MIN, INT64_MAX] has width 2^64 - 1: the naive hi - lo is
  // signed overflow and span + 1 wraps to 0. The full span maps every
  // 64-bit pattern to a valid result (twin-checked).
  constexpr auto kMin = std::numeric_limits<std::int64_t>::min();
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  Rng rng(59), twin(59);
  bool saw_negative = false, saw_positive = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.between(kMin, kMax);
    ASSERT_EQ(v, static_cast<std::int64_t>(twin.next_u64()));
    saw_negative |= v < 0;
    saw_positive |= v > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(Rng, BetweenNearInt64Extremes) {
  constexpr auto kMin = std::numeric_limits<std::int64_t>::min();
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  Rng rng(61);
  EXPECT_EQ(rng.between(kMin, kMin), kMin);
  EXPECT_EQ(rng.between(kMax, kMax), kMax);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t lo_range = rng.between(kMin, kMin + 2);
    ASSERT_GE(lo_range, kMin);
    ASSERT_LE(lo_range, kMin + 2);
    const std::int64_t hi_range = rng.between(kMax - 2, kMax);
    ASSERT_GE(hi_range, kMax - 2);
    ASSERT_LE(hi_range, kMax);
    // Half-open-ish giant range: width 2^64 - 2 exercises below() with
    // the largest non-full span.
    const std::int64_t giant = rng.between(kMin, kMax - 1);
    ASSERT_LE(giant, kMax - 1);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(29);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(Rng, ChildStreamsAreIndependentAndDeterministic) {
  Rng parent(31);
  Rng c1 = parent.child(0);
  Rng c2 = parent.child(1);
  Rng c1again = parent.child(0);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
  Rng c1b = parent.child(0);
  EXPECT_EQ(c1again.next_u64(), c1b.next_u64());
}

TEST(Rng, ChildDoesNotPerturbParent) {
  Rng a(37), b(37);
  (void)a.child(5);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, GrandchildrenDistinct) {
  Rng root(41);
  const auto x = root.child(0).child(1).next_u64();
  const auto y = root.child(1).child(0).next_u64();
  EXPECT_NE(x, y);
}

}  // namespace
}  // namespace jamelect
