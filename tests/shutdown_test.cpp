// Cooperative shutdown: the flag itself, the signal handlers, and the
// Monte-Carlo drivers' drain behaviour (a shutdown mid-sweep yields a
// consistent partial McResult flagged `interrupted`, never a torn one).
//
// Every test restores the flag with clear_shutdown() — the flag is
// process-global, and a leaked set would silently truncate every later
// MC test in this binary.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <memory>
#include <thread>

#include "protocols/lesk.hpp"
#include "sim/montecarlo.hpp"
#include "support/shutdown.hpp"

namespace jamelect {
namespace {

class ShutdownGuard {
 public:
  ShutdownGuard() { clear_shutdown(); }
  ~ShutdownGuard() { clear_shutdown(); }
};

McConfig small_config(std::size_t trials) {
  McConfig config;
  config.trials = trials;
  config.seed = 7;
  config.max_slots = 10'000;
  config.parallel = false;
  return config;
}

UniformProtocolFactory lesk_factory() {
  return [] { return std::make_unique<Lesk>(0.5); };
}

TEST(Shutdown, FlagRoundTrip) {
  const ShutdownGuard guard;
  EXPECT_FALSE(shutdown_requested());
  request_shutdown();
  EXPECT_TRUE(shutdown_requested());
  EXPECT_EQ(shutdown_signal(), 0);  // programmatic
  clear_shutdown();
  EXPECT_FALSE(shutdown_requested());
}

TEST(Shutdown, HandlerSetsFlagOnSigint) {
  const ShutdownGuard guard;
  ASSERT_TRUE(install_shutdown_handlers());
  ASSERT_FALSE(shutdown_requested());
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(shutdown_requested());
  EXPECT_EQ(shutdown_signal(), SIGINT);
}

TEST(Shutdown, PresetFlagYieldsZeroTrialInterruptedResult) {
  const ShutdownGuard guard;
  request_shutdown();
  const McResult result =
      run_aggregate_mc(lesk_factory(), AdversarySpec{}, 64, small_config(32));
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.trials, 0u);
  EXPECT_EQ(result.successes, 0u);
}

TEST(Shutdown, MidRunDrainKeepsCompletedTrialsConsistent) {
  const ShutdownGuard guard;
  // Race a shutdown request against a long sequential sweep: however
  // many trials completed, the partial result must be self-consistent
  // and each outcome identical to the same trial of an uninterrupted
  // run (per-trial determinism: trial k seeds from mix64(seed, k)).
  McConfig config = small_config(20'000);
  config.keep_outcomes = true;
  std::thread killer([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    request_shutdown();
  });
  const McResult partial =
      run_aggregate_mc(lesk_factory(), AdversarySpec{}, 256, config);
  killer.join();
  clear_shutdown();

  ASSERT_TRUE(partial.interrupted);
  ASSERT_LT(partial.trials, 20'000u) << "shutdown landed after the sweep";
  ASSERT_GT(partial.trials, 0u) << "shutdown landed before the sweep";
  EXPECT_EQ(partial.outcomes.size(), partial.trials);
  EXPECT_LE(partial.successes, partial.trials);

  McConfig full_config = small_config(partial.trials);
  full_config.keep_outcomes = true;
  const McResult full =
      run_aggregate_mc(lesk_factory(), AdversarySpec{}, 256, full_config);
  ASSERT_FALSE(full.interrupted);
  ASSERT_EQ(full.outcomes.size(), partial.outcomes.size());
  for (std::size_t k = 0; k < full.outcomes.size(); ++k) {
    EXPECT_EQ(full.outcomes[k].elected, partial.outcomes[k].elected);
    EXPECT_EQ(full.outcomes[k].slots, partial.outcomes[k].slots);
    EXPECT_EQ(full.outcomes[k].jams, partial.outcomes[k].jams);
  }
}

TEST(Shutdown, BatchedParallelDrainIsChunkAligned) {
  const ShutdownGuard guard;
  McConfig config = small_config(50'000);
  config.parallel = true;
  config.batch = 64;
  std::thread killer([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    request_shutdown();
  });
  const McResult partial =
      run_aggregate_mc(lesk_factory(), AdversarySpec{}, 256, config);
  killer.join();
  clear_shutdown();
  if (!partial.interrupted) GTEST_SKIP() << "sweep outran the shutdown";
  EXPECT_LT(partial.trials, 50'000u);
  EXPECT_LE(partial.successes, partial.trials);
  // Chunks are all-or-nothing: the completed count is a sum of whole
  // chunks (each `batch` trials, final one 50000 % 64 = 16), never a
  // mid-chunk tear.
  EXPECT_TRUE(partial.trials % 64 == 0 || partial.trials % 64 == 16)
      << partial.trials;
}

TEST(Shutdown, UninterruptedRunIsNotFlagged) {
  const ShutdownGuard guard;
  const McResult result =
      run_aggregate_mc(lesk_factory(), AdversarySpec{}, 64, small_config(32));
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.trials, 32u);
}

}  // namespace
}  // namespace jamelect
