#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_events.hpp"
#include "support/thread_pool.hpp"

namespace jamelect::obs {
namespace {

TEST(Manifest, JsonCarriesIdentityBuildAndConfig) {
  RunManifest m;
  m.name = "unit \"quoted\"";
  m.seed = 424242;
  m.config["trials"] = "100";
  m.config["note"] = "line1\nline2";
  m.include_metrics = false;
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"name\": \"unit \\\"quoted\\\"\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"seed\": 424242"), std::string::npos);
  EXPECT_NE(json.find("\"created_unix_ms\": "), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\": "), std::string::npos);
  EXPECT_NE(json.find("\"build_type\": "), std::string::npos);
  EXPECT_NE(json.find("\"trials\": \"100\""), std::string::npos);
  EXPECT_NE(json.find("\\nline2"), std::string::npos);
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find(kObsCompiledIn ? "\"obs_compiled_in\": true"
                                     : "\"obs_compiled_in\": false"),
            std::string::npos);
}

TEST(Manifest, MetricsRollupIncludesGlobalCounters) {
  auto& reg = MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  reg.add(reg.counter("manifest.test.counter"), 5);
  RunManifest m;
  m.name = "rollup";
  const std::string json = m.to_json();
  reg.set_enabled(was_enabled);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"manifest.test.counter\": "), std::string::npos);
}

TEST(Manifest, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "jamelect_manifest_test.json";
  RunManifest m;
  m.name = "file-test";
  m.seed = 7;
  m.include_metrics = false;
  ASSERT_TRUE(m.write_file(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"name\": \"file-test\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Manifest, PathResolutionHonoursEnvironment) {
  // Note: setenv/getenv here runs single-threaded (test main thread).
  unsetenv("JAMELECT_MANIFEST");
  unsetenv("JAMELECT_MANIFEST_DIR");
  EXPECT_EQ(manifest_path_for("run"), "./run.manifest.json");
  setenv("JAMELECT_MANIFEST_DIR", "/tmp/results", 1);
  EXPECT_EQ(manifest_path_for("run"), "/tmp/results/run.manifest.json");
  setenv("JAMELECT_MANIFEST", "0", 1);
  EXPECT_EQ(manifest_path_for("run"), "");
  setenv("JAMELECT_MANIFEST", "off", 1);
  EXPECT_EQ(manifest_path_for("run"), "");
  unsetenv("JAMELECT_MANIFEST");
  unsetenv("JAMELECT_MANIFEST_DIR");
}

TEST(TraceEvents, SpansProduceChromeTraceJson) {
  TraceEventRecorder rec;
  {
    const auto span = rec.span("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    { const auto inner = rec.span("inner"); }
  }
  EXPECT_EQ(rec.size(), 2u);
  std::ostringstream out;
  rec.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST(TraceEvents, PoolObserverTimesDispatchedTasks) {
  TraceEventRecorder rec;
  ThreadPool pool(2);
  pool.set_task_observer(&rec);
  std::atomic<int> sum{0};
  pool.parallel_for(64, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  pool.set_task_observer(nullptr);
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
  // Every participating worker slot records exactly one task span.
  EXPECT_GE(rec.size(), 1u);
  std::ostringstream out;
  rec.write_json(out);
  EXPECT_NE(out.str().find("\"name\":\"pool_task\""), std::string::npos);
}

TEST(TraceEvents, WriteFileRoundTrips) {
  TraceEventRecorder rec;
  { const auto span = rec.span("s"); }
  const std::string path = ::testing::TempDir() + "jamelect_trace_test.json";
  ASSERT_TRUE(rec.write_file(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"displayTimeUnit\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jamelect::obs
