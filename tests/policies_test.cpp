#include "adversary/policies.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include "adversary/adversary.hpp"
#include "adversary/interval_buster.hpp"
#include "protocols/interval_partition.hpp"
#include "protocols/lesk.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

JammingBudget roomy_budget() { return JammingBudget(4, {1, 2}); }

TEST(NoJamPolicy, NeverDesires) {
  NoJamPolicy p;
  auto b = roomy_budget();
  for (Slot s = 0; s < 100; ++s) EXPECT_FALSE(p.desires_jam(s, b));
  EXPECT_EQ(p.name(), "none");
}

TEST(SaturatingPolicy, DesiresExactlyWhenLegal) {
  SaturatingPolicy p;
  JammingBudget b(2, {1, 2});
  int desires = 0;
  for (Slot s = 0; s < 30; ++s) {
    const bool d = p.desires_jam(s, b);
    EXPECT_EQ(d, b.can_jam());
    b.commit(d && b.can_jam());
    desires += d ? 1 : 0;
  }
  EXPECT_GT(desires, 0);
}

TEST(PeriodicPolicy, BurstShape) {
  PeriodicPolicy p(10, 3);
  auto b = roomy_budget();
  for (Slot s = 0; s < 40; ++s) {
    EXPECT_EQ(p.desires_jam(s, b), (s % 10) < 3) << s;
  }
}

TEST(PeriodicPolicy, ZeroBurstNeverDesires) {
  PeriodicPolicy p(5, 0);
  auto b = roomy_budget();
  for (Slot s = 0; s < 20; ++s) EXPECT_FALSE(p.desires_jam(s, b));
}

TEST(PeriodicPolicy, RejectsBadParams) {
  EXPECT_THROW(PeriodicPolicy(0, 0), ContractViolation);
  EXPECT_THROW(PeriodicPolicy(5, 6), ContractViolation);
}

TEST(BernoulliPolicy, RateApproximatelyQ) {
  BernoulliPolicy p(0.3, Rng(77));
  auto b = roomy_budget();
  int hits = 0;
  constexpr int kN = 20000;
  for (Slot s = 0; s < kN; ++s) hits += p.desires_jam(s, b) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(PulsePolicy, DutyCycle) {
  PulsePolicy p(2, 3);
  auto b = roomy_budget();
  const bool expected[] = {true, true, false, false, false,
                           true, true, false, false, false};
  for (Slot s = 0; s < 10; ++s) {
    EXPECT_EQ(p.desires_jam(s, b), expected[s]) << s;
  }
}

TEST(LeskEstimateMirror, TracksTheWalk) {
  LeskEstimateMirror m(0.5);  // increment eps/8 = 1/16
  EXPECT_DOUBLE_EQ(m.u(), 0.0);
  m.observe(ChannelState::kCollision);
  EXPECT_DOUBLE_EQ(m.u(), 1.0 / 16.0);
  for (int i = 0; i < 32; ++i) m.observe(ChannelState::kCollision);
  EXPECT_NEAR(m.u(), 33.0 / 16.0, 1e-12);
  m.observe(ChannelState::kNull);
  EXPECT_NEAR(m.u(), 33.0 / 16.0 - 1.0, 1e-12);
  // Floors at zero like the protocol.
  for (int i = 0; i < 10; ++i) m.observe(ChannelState::kNull);
  EXPECT_DOUBLE_EQ(m.u(), 0.0);
  // Single freezes the mirror (protocol over).
  m.observe(ChannelState::kCollision);
  const double before = m.u();
  m.observe(ChannelState::kSingle);
  EXPECT_DOUBLE_EQ(m.u(), before);
}

TEST(SingleDenialPolicy, QuietWhileEstimateFarFromLog2N) {
  // n = 1024: at u = 0 everyone transmits -> P[Single] ~ 0 -> no desire.
  SingleDenialPolicy p(0.5, 1024, 0.02);
  auto b = roomy_budget();
  EXPECT_FALSE(p.desires_jam(0, b));
}

TEST(SingleDenialPolicy, FiresInTheSweetWindow) {
  SingleDenialPolicy p(0.5, 1024, 0.02);
  auto b = roomy_budget();
  // Feed Collisions until the mirrored u reaches ~log2(n) = 10.
  for (int i = 0; i < 10 * 16; ++i) {
    p.observe({i, 2, false, ChannelState::kCollision});
  }
  EXPECT_TRUE(p.desires_jam(200, b));
}

TEST(CollisionForcerPolicy, JamsWhenChannelWouldNotCollideAlone) {
  CollisionForcerPolicy p(0.5, 1024);
  auto b = roomy_budget();
  // u = 0: all 1024 stations transmit, collision certain -> save budget.
  EXPECT_FALSE(p.desires_jam(0, b));
  // Push the mirror to u ~ 14 (p*n ~ 1/16): collision unlikely -> jam.
  for (int i = 0; i < 14 * 16; ++i) {
    p.observe({i, 2, false, ChannelState::kCollision});
  }
  EXPECT_TRUE(p.desires_jam(300, b));
}

TEST(IntervalBuster, IcesSmallIntervalsOnly) {
  // T = 32, eps = 1/2: admissible burst = 16 slots, so intervals of
  // size <= 16 (blocks i <= 4) are targeted unconditionally.
  IntervalBusterPolicy p(0);
  JammingBudget b(32, {1, 2});
  // Slot 3 starts C^1_1 (size 2 <= 16): targeted.
  EXPECT_TRUE(p.desires_jam(3, b));
  // Block 5 intervals have size 32 > 16: falls back to budget pressure.
  const Slot big = interval_first_slot(5, IntervalSet::kC1);
  EXPECT_EQ(p.desires_jam(big, b), b.can_jam());
  // Padding slots are never worth a jam.
  EXPECT_FALSE(p.desires_jam(0, b));
}

TEST(IntervalBuster, TargetSetRestriction) {
  IntervalBusterPolicy c2_only(2);
  JammingBudget b(32, {1, 2});
  EXPECT_FALSE(c2_only.desires_jam(3, b) && !b.can_jam());  // C1 slot
  EXPECT_TRUE(c2_only.desires_jam(5, b));                   // C^1_2
  EXPECT_THROW(IntervalBusterPolicy bad(4), ContractViolation);
}

TEST(OracleDenial, MirrorsAnArbitraryUniformProtocol) {
  // Against LESK at u near log2 n the oracle wants the slot; far from
  // it (u = 0, everyone transmits) it does not.
  OracleDenialPolicy p(std::make_unique<Lesk>(0.5), 1024, 0.02);
  auto b = roomy_budget();
  EXPECT_FALSE(p.desires_jam(0, b));
  for (int i = 0; i < 10 * 16; ++i) {
    p.observe({i, 2, false, ChannelState::kCollision});
  }
  EXPECT_TRUE(p.desires_jam(200, b));
  EXPECT_EQ(p.name(), "oracle_denial");
  EXPECT_THROW(OracleDenialPolicy bad(nullptr, 4), ContractViolation);
}

TEST(BoundedAdversary, FiltersPolicyThroughBudget) {
  // Saturating policy against eps = 1 (no jams allowed ever).
  BoundedAdversary adv(4, {1, 1}, std::make_unique<SaturatingPolicy>());
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(adv.step());
  EXPECT_EQ(adv.budget().jams(), 0);
}

TEST(BoundedAdversary, GreedyRealizesBudget) {
  BoundedAdversary adv(8, {1, 4}, std::make_unique<SaturatingPolicy>());
  std::int64_t jams = 0;
  for (int i = 0; i < 800; ++i) jams += adv.step() ? 1 : 0;
  // Long-run density close to (but never above) 1 - eps = 3/4.
  EXPECT_GT(jams, 800 * 0.6);
  EXPECT_LE(jams, 800 * 0.75 + 8);
}

TEST(BoundedAdversary, RequiresPolicy) {
  EXPECT_THROW(BoundedAdversary(4, {1, 2}, nullptr), ContractViolation);
}

}  // namespace
}  // namespace jamelect
