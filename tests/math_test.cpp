#include "support/math.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <cmath>
#include <limits>
#include <tuple>

namespace jamelect {
namespace {

TEST(Pow2U64, Values) {
  EXPECT_EQ(pow2_u64(0), 1u);
  EXPECT_EQ(pow2_u64(1), 2u);
  EXPECT_EQ(pow2_u64(10), 1024u);
  EXPECT_EQ(pow2_u64(63), 1ULL << 63);
  EXPECT_THROW((void)pow2_u64(64), ContractViolation);
}

TEST(FloorLog2, Values) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_THROW((void)floor_log2(0), ContractViolation);
}

TEST(CeilLog2, Values) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(IsPow2, Values) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 50));
  EXPECT_FALSE(is_pow2((1ULL << 50) + 1));
}

TEST(PowOneMinus, EdgeCases) {
  EXPECT_DOUBLE_EQ(pow_one_minus(0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(pow_one_minus(0.0, 100), 1.0);
  EXPECT_DOUBLE_EQ(pow_one_minus(1.0, 5), 0.0);
  EXPECT_NEAR(pow_one_minus(0.5, 2), 0.25, 1e-15);
}

TEST(PowOneMinus, StableForTinyP) {
  // (1 - 2^-40)^(2^40) ~ 1/e; naive pow() would lose this.
  const double p = std::ldexp(1.0, -40);
  const auto n = static_cast<std::uint64_t>(1) << 40;
  EXPECT_NEAR(pow_one_minus(p, n), 1.0 / std::exp(1.0), 1e-9);
}

TEST(SlotProbabilities, SumsToOne) {
  for (std::uint64_t n : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 20}) {
    for (double p : {0.0, 1e-9, 1e-3, 0.1, 0.5, 0.9, 1.0}) {
      const auto s = slot_probabilities(n, p);
      EXPECT_NEAR(s.null + s.single + s.collision, 1.0, 1e-12)
          << "n=" << n << " p=" << p;
      EXPECT_GE(s.null, 0.0);
      EXPECT_GE(s.single, 0.0);
      EXPECT_GE(s.collision, 0.0);
    }
  }
}

TEST(SlotProbabilities, SingleStation) {
  const auto s = slot_probabilities(1, 0.3);
  EXPECT_NEAR(s.null, 0.7, 1e-15);
  EXPECT_NEAR(s.single, 0.3, 1e-15);
  EXPECT_NEAR(s.collision, 0.0, 1e-15);
}

TEST(SlotProbabilities, TwoStationsExact) {
  const auto s = slot_probabilities(2, 0.5);
  EXPECT_NEAR(s.null, 0.25, 1e-15);
  EXPECT_NEAR(s.single, 0.5, 1e-15);
  EXPECT_NEAR(s.collision, 0.25, 1e-15);
}

TEST(SlotProbabilities, AllTransmit) {
  const auto one = slot_probabilities(1, 1.0);
  EXPECT_DOUBLE_EQ(one.single, 1.0);
  const auto many = slot_probabilities(5, 1.0);
  EXPECT_DOUBLE_EQ(many.collision, 1.0);
}

TEST(SlotProbabilities, ZeroStations) {
  const auto s = slot_probabilities(0, 0.7);
  EXPECT_DOUBLE_EQ(s.null, 1.0);
}

TEST(SlotProbabilities, PeakSingleAtOneOverN) {
  // P[Single] at p = 1/n approaches 1/e and dominates nearby p.
  const std::uint64_t n = 1 << 16;
  const double p_star = 1.0 / static_cast<double>(n);
  const double at_star = slot_probabilities(n, p_star).single;
  EXPECT_NEAR(at_star, 1.0 / std::exp(1.0), 1e-3);
  EXPECT_GT(at_star, slot_probabilities(n, p_star * 8).single);
  EXPECT_GT(at_star, slot_probabilities(n, p_star / 8).single);
}

TEST(TransmitProbability, Mapping) {
  EXPECT_DOUBLE_EQ(transmit_probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(transmit_probability(1.0), 0.5);
  EXPECT_DOUBLE_EQ(transmit_probability(10.0), std::ldexp(1.0, -10));
  EXPECT_EQ(transmit_probability(3000.0), 0.0);  // graceful underflow
  EXPECT_THROW((void)transmit_probability(-0.5), ContractViolation);
}

TEST(CeilToSlots, Values) {
  EXPECT_EQ(ceil_to_slots(0.0), 0);
  EXPECT_EQ(ceil_to_slots(1.2), 2);
  EXPECT_EQ(ceil_to_slots(7.0), 7);
  EXPECT_EQ(ceil_to_slots(1e30), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(ceil_to_slots(std::numeric_limits<double>::infinity()),
            std::numeric_limits<std::int64_t>::max());
}

// Property sweep: probabilities are monotone in the expected direction.
class SlotProbMonotone
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(SlotProbMonotone, NullDecreasesCollisionIncreasesInP) {
  const auto [n, p] = GetParam();
  const auto lo = slot_probabilities(n, p);
  const auto hi = slot_probabilities(n, std::min(1.0, p * 2));
  EXPECT_LE(hi.null, lo.null + 1e-12);
  EXPECT_GE(hi.collision, lo.collision - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SlotProbMonotone,
    ::testing::Combine(::testing::Values<std::uint64_t>(2, 16, 1024, 1 << 20),
                       ::testing::Values(1e-8, 1e-5, 1e-3, 0.05, 0.3)));

}  // namespace
}  // namespace jamelect
