// End-to-end telemetry validation: replaying a Monte-Carlo trial with an
// observer attached must (a) leave the outcome bit-identical, and
// (b) produce an event stream whose per-slot accounting reconciles
// EXACTLY with the engine's own TraceCounters — same slot count, same
// state taxonomy, same jam count, same expected-transmissions sum.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <string_view>
#include <vector>

#include "obs/events.hpp"
#include "obs/observer.hpp"
#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "protocols/lewk.hpp"
#include "sim/montecarlo.hpp"

namespace jamelect {
namespace {

UniformProtocolFactory lesk_factory() {
  return [] { return std::make_unique<Lesk>(0.5); };
}

AdversarySpec saturating() {
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 32;
  spec.eps = 0.5;
  return spec;
}

McConfig mc(std::uint64_t seed, std::int64_t max_slots) {
  McConfig c;
  c.trials = 4;
  c.seed = seed;
  c.max_slots = max_slots;
  c.keep_outcomes = true;
  return c;
}

void expect_same_outcome(const TrialOutcome& a, const TrialOutcome& b) {
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.nulls, b.nulls);
  EXPECT_EQ(a.singles, b.singles);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.jams, b.jams);
  EXPECT_EQ(a.elected, b.elected);
  EXPECT_DOUBLE_EQ(a.transmissions, b.transmissions);
}

TEST(Reconcile, LeskReplayMatchesOriginalAndTraceCounters) {
  const McConfig config = mc(77, 200000);
  const std::uint64_t n = 64;
  const auto original =
      run_aggregate_mc(lesk_factory(), saturating(), n, config);
  ASSERT_EQ(original.outcomes.size(), config.trials);

  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    obs::VectorSink sink;
    obs::RunObserver observer(sink, {/*slot_sample_period=*/1});
    Trace trace(/*keep_records=*/false);
    const TrialOutcome replayed = replay_aggregate_trial(
        lesk_factory(), saturating(), n, config, trial, &observer, &trace);

    // (a) Replay with telemetry attached changes nothing.
    expect_same_outcome(replayed, original.outcomes[trial]);

    // (b) Events reconcile exactly with the engine's TraceCounters.
    const TraceCounters& c = trace.counters();
    std::int64_t slots = 0, nulls = 0, singles = 0, collisions = 0, jams = 0;
    double etx_sum = 0.0;
    bool saw_spend = false;
    for (const obs::Event& e : sink.events()) {
      if (e.kind != obs::EventKind::kSlot) continue;
      ++slots;
      switch (e.state) {
        case ChannelState::kNull: ++nulls; break;
        case ChannelState::kSingle: ++singles; break;
        case ChannelState::kCollision: ++collisions; break;
      }
      if (e.jammed) ++jams;
      etx_sum += e.expected_tx;
      saw_spend = saw_spend || e.budget_spend > 0.0;
    }
    EXPECT_EQ(slots, c.slots);
    EXPECT_EQ(nulls, c.nulls);
    EXPECT_EQ(singles, c.singles);
    EXPECT_EQ(collisions, c.collisions);
    EXPECT_EQ(jams, c.jammed);
    // Both sides accumulate the identical per-slot doubles in the same
    // order, so the sums are equal to the last bit.
    EXPECT_DOUBLE_EQ(etx_sum, c.expected_transmissions);
    EXPECT_EQ(jams, replayed.jams);
    EXPECT_TRUE(saw_spend);  // the saturating jammer must spend budget

    // Stream structure: trial_start first, trial_end last, outcome
    // summary consistent with the replayed outcome.
    const auto events = sink.events();
    ASSERT_GE(events.size(), 2u);
    EXPECT_EQ(events.front().kind, obs::EventKind::kTrialStart);
    EXPECT_EQ(events.back().kind, obs::EventKind::kTrialEnd);
    EXPECT_EQ(events.back().slots_total, replayed.slots);
    EXPECT_EQ(events.back().jams_total, replayed.jams);
    EXPECT_EQ(events.back().trial, trial);
  }
}

TEST(Reconcile, LeskReplayExposesEstimatorTrajectory) {
  const McConfig config = mc(91, 200000);
  obs::VectorSink sink;
  obs::RunObserver observer(sink, {1});
  const auto out = replay_aggregate_trial(lesk_factory(), AdversarySpec{}, 256,
                                          config, 0, &observer);
  ASSERT_TRUE(out.elected);
  std::set<double> estimates;
  for (const obs::Event& e : sink.events()) {
    if (e.kind == obs::EventKind::kSlot && !std::isnan(e.estimate)) {
      estimates.insert(e.estimate);
    }
  }
  // The biased random walk must actually move: many distinct u values
  // on the way from u = 1 toward log2(n)-scale.
  EXPECT_GE(estimates.size(), 4u);
  EXPECT_GT(*estimates.rbegin(), *estimates.begin());
}

TEST(Reconcile, LeskElectionEmitsPhaseEvent) {
  const McConfig config = mc(101, 200000);
  obs::VectorSink sink;
  obs::RunObserver observer(sink, {64});
  const auto out = replay_aggregate_trial(lesk_factory(), AdversarySpec{}, 32,
                                          config, 1, &observer);
  ASSERT_TRUE(out.elected);
  bool saw_elected = false;
  for (const obs::Event& e : sink.events()) {
    if (e.kind == obs::EventKind::kPhase) {
      EXPECT_STREQ(e.protocol, "LESK");
      if (std::string_view(e.phase) == "elected") saw_elected = true;
    }
  }
  EXPECT_TRUE(saw_elected);
}

TEST(Reconcile, LesuReplayEmitsScheduleEvents) {
  McConfig config = mc(55, 1 << 20);
  obs::VectorSink sink;
  obs::RunObserver observer(sink, {1024});
  const auto out = replay_aggregate_trial(
      [] { return std::make_unique<Lesu>(LesuParams{}); }, AdversarySpec{}, 16,
      config, 0, &observer);
  (void)out;
  std::size_t lesu_phases = 0;
  for (const obs::Event& e : sink.events()) {
    if (e.kind == obs::EventKind::kPhase &&
        std::string_view(e.protocol) == "LESU") {
      ++lesu_phases;
    }
  }
  EXPECT_GE(lesu_phases, 1u);
}

TEST(Reconcile, CohortReplayMatchesOriginalAndEmitsSplits) {
  // Weak-CD Notification over LESK: the C1/C2 Singles force cohort
  // splits, and confirmers re-merging exercises the merge path.
  const McConfig config = mc(123, 1 << 20);
  const std::uint64_t n = 64;
  const EngineConfig engine{CdMode::kWeak, StopRule::kAllDone, 1 << 20};
  const auto original = run_cohort_mc([] { return make_lewk_station(0.5); },
                                      AdversarySpec{}, n, engine, config);
  ASSERT_EQ(original.outcomes.size(), config.trials);

  obs::VectorSink sink;
  obs::RunObserver observer(sink, {1});
  Trace trace(false);
  const TrialOutcome replayed =
      replay_cohort_trial([] { return make_lewk_station(0.5); },
                          AdversarySpec{}, n, engine, config, 0, &observer,
                          &trace);
  expect_same_outcome(replayed, original.outcomes[0]);

  const TraceCounters& c = trace.counters();
  std::int64_t slots = 0;
  std::size_t splits = 0, merges = 0;
  for (const obs::Event& e : sink.events()) {
    if (e.kind == obs::EventKind::kSlot) ++slots;
    if (e.kind == obs::EventKind::kCohort) {
      if (std::string_view(e.cohort_op) == "split") ++splits;
      if (std::string_view(e.cohort_op) == "merge") ++merges;
      EXPECT_GE(e.cohorts_live, 1u);
    }
  }
  EXPECT_EQ(slots, c.slots);
  EXPECT_GE(splits, 1u);  // the election's deciding Single always splits
  // Every split that re-converged was merged; live cohorts at the end
  // equals 1 + (splits - merges) only if no cohort survived split; just
  // sanity-bound merges by splits.
  EXPECT_LE(merges, splits);
}

}  // namespace
}  // namespace jamelect
