#include "sim/montecarlo.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <memory>
#include <string>

#include "obs/trace_events.hpp"
#include "protocols/lesk.hpp"
#include "protocols/uniform_station.hpp"

namespace jamelect {
namespace {

UniformProtocolFactory lesk_factory() {
  return [] { return std::make_unique<Lesk>(0.5); };
}

TEST(MonteCarlo, AggregatesAllTrials) {
  McConfig c;
  c.trials = 50;
  c.seed = 5;
  c.max_slots = 100000;
  c.keep_outcomes = true;
  const auto res = run_aggregate_mc(lesk_factory(), AdversarySpec{}, 64, c);
  EXPECT_EQ(res.trials, 50u);
  EXPECT_EQ(res.successes, 50u);
  EXPECT_EQ(res.outcomes.size(), 50u);
  EXPECT_DOUBLE_EQ(res.success.rate, 1.0);
  EXPECT_GT(res.slots.mean, 0.0);
  EXPECT_GT(res.energy_per_station.mean, 0.0);
  EXPECT_EQ(res.slots_on_success.count, 50u);
}

TEST(MonteCarlo, ParallelAndSerialAgreeExactly) {
  McConfig par;
  par.trials = 40;
  par.seed = 9;
  par.max_slots = 100000;
  par.keep_outcomes = true;
  McConfig ser = par;
  ser.parallel = false;
  const auto a = run_aggregate_mc(lesk_factory(), AdversarySpec{}, 128, par);
  const auto b = run_aggregate_mc(lesk_factory(), AdversarySpec{}, 128, ser);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t k = 0; k < a.outcomes.size(); ++k) {
    ASSERT_EQ(a.outcomes[k].slots, b.outcomes[k].slots) << k;
    ASSERT_EQ(a.outcomes[k].nulls, b.outcomes[k].nulls) << k;
  }
}

TEST(MonteCarlo, SeedChangesResults) {
  McConfig c;
  c.trials = 10;
  c.seed = 1;
  c.max_slots = 100000;
  c.keep_outcomes = true;
  const auto a = run_aggregate_mc(lesk_factory(), AdversarySpec{}, 128, c);
  c.seed = 2;
  const auto b = run_aggregate_mc(lesk_factory(), AdversarySpec{}, 128, c);
  bool any_diff = false;
  for (std::size_t k = 0; k < 10; ++k) {
    any_diff |= a.outcomes[k].slots != b.outcomes[k].slots;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MonteCarlo, FailuresAreCensored) {
  McConfig c;
  c.trials = 8;
  c.seed = 3;
  c.max_slots = 2;  // hopeless for n = 4096
  const auto res = run_aggregate_mc(lesk_factory(), AdversarySpec{}, 4096, c);
  EXPECT_EQ(res.successes, 0u);
  EXPECT_DOUBLE_EQ(res.slots.mean, 2.0);
  EXPECT_EQ(res.slots_on_success.count, 0u);
  EXPECT_LT(res.success.upper, 0.5);
}

TEST(MonteCarlo, StationRunnerValidatesElection) {
  McConfig c;
  c.trials = 10;
  c.seed = 7;
  c.max_slots = 100000;
  c.keep_outcomes = true;
  const auto res = run_station_mc(
      [](StationId) -> StationProtocolPtr {
        return std::make_unique<UniformStationAdapter>(
            std::make_unique<Lesk>(0.5));
      },
      AdversarySpec{}, 16, {CdMode::kStrong, StopRule::kAllDone, 100000}, c);
  EXPECT_EQ(res.successes, 10u);
  for (const auto& o : res.outcomes) {
    EXPECT_TRUE(o.unique_leader);
    EXPECT_TRUE(o.all_done);
    EXPECT_TRUE(o.leader.has_value());
  }
}

TEST(MonteCarlo, StreamingMatchesMaterializedSummaries) {
  McConfig keep;
  keep.trials = 60;
  keep.seed = 13;
  keep.max_slots = 100000;
  keep.keep_outcomes = true;
  McConfig stream = keep;
  stream.keep_outcomes = false;
  const auto a = run_aggregate_mc(lesk_factory(), AdversarySpec{}, 64, keep);
  const auto b = run_aggregate_mc(lesk_factory(), AdversarySpec{}, 64, stream);
  EXPECT_TRUE(b.outcomes.empty());
  EXPECT_EQ(a.successes, b.successes);
  // Same multiset of per-trial values, so type-7 quantiles agree
  // exactly; means use different (both exact) summation orders.
  EXPECT_DOUBLE_EQ(a.slots.median, b.slots.median);
  EXPECT_DOUBLE_EQ(a.slots.p95, b.slots.p95);
  EXPECT_DOUBLE_EQ(a.slots.min, b.slots.min);
  EXPECT_DOUBLE_EQ(a.slots.max, b.slots.max);
  EXPECT_NEAR(a.slots.mean, b.slots.mean, 1e-9 * (1.0 + a.slots.mean));
  EXPECT_NEAR(a.slots.stddev, b.slots.stddev, 1e-9 * (1.0 + a.slots.stddev));
  EXPECT_NEAR(a.jams.mean, b.jams.mean, 1e-9);
  EXPECT_NEAR(a.energy_per_station.mean, b.energy_per_station.mean,
              1e-9 * (1.0 + a.energy_per_station.mean));
  EXPECT_DOUBLE_EQ(a.slots_on_success.median, b.slots_on_success.median);
}

TEST(MonteCarlo, RejectsZeroTrials) {
  McConfig c;
  c.trials = 0;
  EXPECT_THROW((void)run_aggregate_mc(lesk_factory(), AdversarySpec{}, 4, c),
               ContractViolation);
}

TEST(MonteCarlo, UnknownPolicyThrows) {
  AdversarySpec bad;
  bad.policy = "quantum";
  McConfig c;
  c.trials = 1;
  EXPECT_THROW((void)run_aggregate_mc(lesk_factory(), bad, 4, c),
               std::invalid_argument);
}

TEST(MonteCarlo, HeartbeatReportsButDoesNotPerturbResults) {
  McConfig quiet;
  quiet.trials = 30;
  quiet.seed = 21;
  quiet.max_slots = 100000;
  quiet.keep_outcomes = true;
  McConfig loud = quiet;
  loud.heartbeat = true;
  loud.heartbeat_interval_ms = 1;  // force in-flight lines too

  ::testing::internal::CaptureStderr();
  const auto b = run_aggregate_mc(lesk_factory(), AdversarySpec{}, 64, loud);
  const std::string err = ::testing::internal::GetCapturedStderr();
  const auto a = run_aggregate_mc(lesk_factory(), AdversarySpec{}, 64, quiet);

  // Reproducibility contract: the heartbeat observes, never perturbs.
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t k = 0; k < a.outcomes.size(); ++k) {
    ASSERT_EQ(a.outcomes[k].slots, b.outcomes[k].slots) << k;
    ASSERT_EQ(a.outcomes[k].jams, b.outcomes[k].jams) << k;
    ASSERT_EQ(a.outcomes[k].elected, b.outcomes[k].elected) << k;
  }
  // The completion line is deterministic (unlike the timing-dependent
  // in-flight ones), so it is safe to assert on.
  EXPECT_NE(err.find("[mc] 30/30 trials complete"), std::string::npos) << err;
}

TEST(MonteCarlo, HeartbeatOffPrintsNothing) {
  McConfig c;
  c.trials = 5;
  c.seed = 2;
  c.max_slots = 100000;
  ::testing::internal::CaptureStderr();
  (void)run_aggregate_mc(lesk_factory(), AdversarySpec{}, 16, c);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(MonteCarlo, RecorderCapturesOneSpanPerTrial) {
  obs::TraceEventRecorder rec;
  McConfig c;
  c.trials = 12;
  c.seed = 33;
  c.max_slots = 100000;
  c.recorder = &rec;
  const auto res = run_aggregate_mc(lesk_factory(), AdversarySpec{}, 32, c);
  EXPECT_EQ(res.trials, 12u);
  EXPECT_EQ(rec.size(), 12u);  // one "mc.trial" span per trial
}

TEST(MonteCarlo, HybridRunnerWorks) {
  McConfig c;
  c.trials = 20;
  c.seed = 11;
  c.max_slots = 1 << 20;
  const auto res = run_hybrid_mc(lesk_factory(), AdversarySpec{}, 32, c);
  EXPECT_EQ(res.successes, 20u);
}

}  // namespace
}  // namespace jamelect
