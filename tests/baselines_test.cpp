#include <gtest/gtest.h>

#include <cmath>

#include "baselines/arss.hpp"
#include "baselines/lesk_symmetric.hpp"
#include "baselines/nakano_olariu.hpp"
#include "baselines/willard.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/aggregate.hpp"
#include "sim/engine.hpp"
#include "sim/montecarlo.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

// ---------- ARSS unit behaviour ----------

TEST(Arss, GammaShrinksWithNAndT) {
  EXPECT_GT(arss_gamma(16, 4), arss_gamma(1 << 20, 4));
  EXPECT_GT(arss_gamma(1024, 4), arss_gamma(1024, 1 << 16));
  EXPECT_GT(arss_gamma(1 << 20, 1 << 16), 0.0);
  EXPECT_LT(arss_gamma(16, 1), 0.5);
}

TEST(Arss, ListenerUpdatesProbability) {
  ArssParams params;
  params.gamma = 0.5;
  params.initial_p = 1.0 / 48.0;
  ArssStation st(params);
  EXPECT_DOUBLE_EQ(st.transmit_probability(0), 1.0 / 48.0);
  st.feedback(0, false, Observation::kNull);
  EXPECT_DOUBLE_EQ(st.p(), 1.5 / 48.0);  // multiplied by (1+gamma)
  // A collision leaves p unchanged in-round, but with T_v = 1 the
  // counter block immediately detects "no idle in last T_v rounds" and
  // backs off.
  st.feedback(1, false, Observation::kCollision);
  EXPECT_DOUBLE_EQ(st.p(), 1.0 / 48.0);
  EXPECT_EQ(st.threshold(), 3);
}

TEST(Arss, ProbabilityCappedAtPMax) {
  ArssParams params;
  params.gamma = 0.9;
  ArssStation st(params);
  for (Slot s = 0; s < 50; ++s) st.feedback(s, false, Observation::kNull);
  EXPECT_DOUBLE_EQ(st.p(), params.p_max);
}

TEST(Arss, TransmitterGetsNoFeedback) {
  ArssParams params;
  params.gamma = 0.5;
  params.initial_p = 1.0 / 48.0;
  ArssStation st(params);
  st.feedback(0, true, Observation::kCollision);
  // No listener update fires — but time still passes: with T_v = 1 the
  // counter block immediately counts a no-idle window and backs off.
  EXPECT_DOUBLE_EQ(st.p(), (1.0 / 48.0) / 1.5);
  EXPECT_EQ(st.threshold(), 3);
}

TEST(Arss, ThresholdGrowsWithoutIdleSlots) {
  ArssParams params;
  ArssStation st(params);
  EXPECT_EQ(st.threshold(), 1);
  // Collisions only: after each T_v-window without idle, T_v += 2.
  st.feedback(0, false, Observation::kCollision);  // c_v wraps, T_v 1->3
  EXPECT_EQ(st.threshold(), 3);
  for (Slot s = 1; s <= 3; ++s) {
    st.feedback(s, false, Observation::kCollision);
  }
  EXPECT_EQ(st.threshold(), 5);
}

TEST(Arss, ElectsOnSingleInElectionMode) {
  ArssStation listener{ArssParams{}};
  listener.feedback(0, false, Observation::kSingle);
  EXPECT_TRUE(listener.done());
  EXPECT_FALSE(listener.is_leader());
  ArssStation winner{ArssParams{}};
  winner.feedback(0, true, Observation::kSingle);  // strong-CD transmitter
  EXPECT_TRUE(winner.done());
  EXPECT_TRUE(winner.is_leader());
}

TEST(Arss, MacModeAppliesSingleUpdateAndContinues) {
  ArssParams params;
  params.elect_on_single = false;
  params.gamma = 0.5;
  params.initial_p = 1.0 / 48.0;
  ArssStation st(params);
  st.feedback(0, false, Observation::kSingle);
  EXPECT_FALSE(st.done());
  // One division from the Single rule, one from the immediate no-idle
  // window (T_v starts at 1).
  EXPECT_DOUBLE_EQ(st.p(), (1.0 / 48.0) / 1.5 / 1.5);
}

TEST(Arss, ElectsLeaderEndToEnd) {
  const std::uint64_t n = 64;
  const auto factory = [&](StationId) -> StationProtocolPtr {
    ArssParams params;
    params.gamma = arss_gamma(n, 16);
    return std::make_unique<ArssStation>(params);
  };
  AdversarySpec adv;
  adv.policy = "none";
  McConfig mc;
  mc.trials = 5;
  mc.seed = 123;
  mc.max_slots = 200000;
  const auto res = run_station_mc(factory, adv, n, {CdMode::kStrong,
                                   StopRule::kAllDone, mc.max_slots}, mc);
  EXPECT_EQ(res.successes, res.trials);
}

TEST(Arss, SurvivesSaturatingJamming) {
  const std::uint64_t n = 32;
  const auto factory = [&](StationId) -> StationProtocolPtr {
    ArssParams params;
    params.gamma = arss_gamma(n, 64);
    return std::make_unique<ArssStation>(params);
  };
  AdversarySpec adv;
  adv.policy = "saturating";
  adv.T = 64;
  adv.eps = 0.5;
  McConfig mc;
  mc.trials = 3;
  mc.seed = 321;
  mc.max_slots = 1 << 20;
  const auto res = run_station_mc(factory, adv, n, {CdMode::kStrong,
                                   StopRule::kAllDone, mc.max_slots}, mc);
  EXPECT_EQ(res.successes, res.trials);
}

// ---------- Willard ----------

TEST(Willard, PhaseProgression) {
  Willard w;
  EXPECT_EQ(w.phase(), Willard::Phase::kDoubling);
  EXPECT_DOUBLE_EQ(w.u(), 2.0);
  w.observe(ChannelState::kCollision);  // loud -> double
  EXPECT_DOUBLE_EQ(w.u(), 4.0);
  w.observe(ChannelState::kNull);  // quiet -> bracket [2, 4]
  EXPECT_EQ(w.phase(), Willard::Phase::kBinarySearch);
  EXPECT_DOUBLE_EQ(w.u(), 3.0);
  w.observe(ChannelState::kNull);  // hi = 3 -> width 1 -> polish at 3
  EXPECT_EQ(w.phase(), Willard::Phase::kPolish);
  EXPECT_DOUBLE_EQ(w.u(), 3.0);
}

TEST(Willard, SingleElectsInAnyPhase) {
  Willard w;
  w.observe(ChannelState::kSingle);
  EXPECT_TRUE(w.elected());
  EXPECT_DOUBLE_EQ(w.transmit_probability(), 0.0);
}

TEST(Willard, FastWithoutAdversary) {
  for (std::uint64_t n : {64ULL, 4096ULL, 1ULL << 18}) {
    Willard w;
    AdversarySpec spec;  // none
    Rng rng(55 + n);
    auto adv = make_adversary(spec, rng.child(1));
    Rng sim = rng.child(2);
    const auto out = run_aggregate(w, *adv, {n, 10000}, sim);
    EXPECT_TRUE(out.elected) << n;
    // O(log log n) shape: far fewer slots than log2(n)^2.
    const double log2n = std::log2(static_cast<double>(n));
    EXPECT_LT(static_cast<double>(out.slots), 4.0 * log2n) << n;
  }
}

TEST(Willard, BreaksUnderHeavyJamming) {
  // eps = 0.25 saturating: most slots read Collision; Willard's
  // symmetric walk cannot make progress (the paper's §1.3/§2 argument
  // for why estimation-based protocols need the asymmetric step).
  std::size_t failures = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Willard w;
    AdversarySpec spec;
    spec.policy = "saturating";
    spec.T = 64;
    spec.eps = 0.25;
    Rng rng(900 + seed);
    auto adv = make_adversary(spec, rng.child(1));
    Rng sim = rng.child(2);
    const auto out = run_aggregate(w, *adv, {4096, 100000}, sim);
    failures += out.elected ? 0 : 1;
  }
  EXPECT_GE(failures, 3u);
}

// ---------- NakanoOlariu ----------

TEST(NakanoOlariu, SweepsThenWalks) {
  NakanoOlariu no;
  EXPECT_TRUE(no.sweeping());
  EXPECT_DOUBLE_EQ(no.u(), 1.0);
  no.observe(ChannelState::kCollision);
  EXPECT_DOUBLE_EQ(no.u(), 2.0);
  no.observe(ChannelState::kCollision);
  EXPECT_DOUBLE_EQ(no.u(), 3.0);
  no.observe(ChannelState::kNull);  // sweep ends, u stays
  EXPECT_FALSE(no.sweeping());
  EXPECT_DOUBLE_EQ(no.u(), 3.0);
  no.observe(ChannelState::kNull);
  EXPECT_DOUBLE_EQ(no.u(), 2.0);  // now a symmetric walk
  no.observe(ChannelState::kCollision);
  EXPECT_DOUBLE_EQ(no.u(), 3.0);
}

TEST(NakanoOlariu, ElectsInOrderLogNWithoutAdversary) {
  for (std::uint64_t n : {64ULL, 4096ULL, 1ULL << 16}) {
    NakanoOlariu no;
    AdversarySpec spec;
    Rng rng(77 + n);
    auto adv = make_adversary(spec, rng.child(1));
    Rng sim = rng.child(2);
    const auto out = run_aggregate(no, *adv, {n, 100000}, sim);
    EXPECT_TRUE(out.elected) << n;
    const double log2n = std::log2(static_cast<double>(n));
    EXPECT_LT(static_cast<double>(out.slots), 12.0 * log2n) << n;
  }
}

// ---------- Symmetric-LESK ablation ----------

TEST(SymmetricLesk, SymmetricWalk) {
  SymmetricLesk s;
  s.observe(ChannelState::kCollision);
  EXPECT_DOUBLE_EQ(s.u(), 1.0);
  s.observe(ChannelState::kNull);
  EXPECT_DOUBLE_EQ(s.u(), 0.0);
  s.observe(ChannelState::kNull);
  EXPECT_DOUBLE_EQ(s.u(), 0.0);  // floored
}

TEST(SymmetricLesk, WorksWithoutAdversary) {
  SymmetricLesk s;
  AdversarySpec spec;
  Rng rng(5);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  const auto out = run_aggregate(s, *adv, {1024, 100000}, sim);
  EXPECT_TRUE(out.elected);
}

TEST(SymmetricLesk, DivergesUnderMajorityJamming) {
  // eps = 0.25: ~3/4 of slots jammed; the symmetric +1 per Collision
  // beats the -1 per Null and u runs away (the paper's core argument
  // for the eps/8 increment).
  std::size_t failures = 0;
  double final_u_sum = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    SymmetricLesk s;
    AdversarySpec spec;
    spec.policy = "saturating";
    spec.T = 64;
    spec.eps = 0.25;
    Rng rng(40 + seed);
    auto adv = make_adversary(spec, rng.child(1));
    Rng sim = rng.child(2);
    const auto out = run_aggregate(s, *adv, {1024, 50000}, sim);
    failures += out.elected ? 0 : 1;
    final_u_sum += s.u();
  }
  EXPECT_GE(failures, 4u);
  EXPECT_GT(final_u_sum / 5.0, 100.0);  // estimate far above log2(1024)=10
}

}  // namespace
}  // namespace jamelect
