// SlotProbCache must be a transparent memo of the uncached call chain:
// lookup(u) returns the exact doubles of transmit_probability(u) +
// slot_probabilities(n, p), for any u, across growth and collisions.
#include "support/slot_prob_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "support/math.hpp"
#include "support/rng.hpp"
#include "support/wide_rng.hpp"

namespace jamelect {
namespace {

[[nodiscard]] std::uint64_t bits(double x) {
  return std::bit_cast<std::uint64_t>(x);
}

void expect_entry_exact(SlotProbCache& cache, double u) {
  const SlotProbCache::Entry& e = cache.lookup(u);
  const double p = transmit_probability(u);
  const SlotProbabilities probs = slot_probabilities(cache.n(), p);
  ASSERT_EQ(bits(e.p), bits(p)) << "u = " << u;
  ASSERT_EQ(bits(e.c_null), bits(probs.null)) << "u = " << u;
  ASSERT_EQ(bits(e.c_single), bits(probs.null + probs.single)) << "u = " << u;
  ASSERT_EQ(bits(e.exp_tx), bits(static_cast<double>(cache.n()) * p))
      << "u = " << u;
}

TEST(SlotProbCache, MatchesUncachedPathOnLeskLattice) {
  // The u values LESK actually visits: multiples of eps/8 minus whole
  // steps, floored at 0.
  for (const std::uint64_t n : {1ULL, 2ULL, 37ULL, 1ULL << 20}) {
    SlotProbCache cache(n);
    const double inc = 1.0 / (8.0 / 0.5);
    double u = 0.0;
    Rng rng(7);
    for (int step = 0; step < 2000; ++step) {
      expect_entry_exact(cache, u);
      u = rng.bernoulli(0.5) ? std::max(u - 1.0, 0.0) : u + inc;
    }
  }
}

TEST(SlotProbCache, RepeatLookupsHitTheCache) {
  SlotProbCache cache(1024);
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 50; ++k) {
      (void)cache.lookup(static_cast<double>(k) * 0.0625);
    }
  }
  EXPECT_EQ(cache.misses(), 50u);  // only the first round inserted
  EXPECT_EQ(cache.size(), 50u);
}

TEST(SlotProbCache, SurvivesGrowth) {
  SlotProbCache cache(255, /*initial_capacity=*/8);
  std::vector<double> us;
  Rng rng(13);
  for (int k = 0; k < 500; ++k) us.push_back(rng.uniform() * 64.0);
  for (const double u : us) expect_entry_exact(cache, u);
  // Everything inserted before growth must still be found afterwards.
  const std::uint64_t misses = cache.misses();
  for (const double u : us) expect_entry_exact(cache, u);
  EXPECT_EQ(cache.misses(), misses);
}

TEST(SlotProbCache, HandlesExtremeExponents) {
  SlotProbCache cache(1ULL << 20);
  expect_entry_exact(cache, 0.0);     // p = 1
  expect_entry_exact(cache, 1e-300);  // p just below 1
  expect_entry_exact(cache, 1075.0);  // 2^-u underflows to 0
  expect_entry_exact(cache, 1e300);   // far past underflow
}

TEST(SlotProbCache, SignedZeroGetsItsOwnEntryWithEqualPayload) {
  // -0.0 has a distinct bit pattern; if a protocol ever produced it,
  // the cache must not confuse it with the empty sentinel and must
  // return the same probabilities as +0.0 (transmit_probability treats
  // them identically).
  SlotProbCache cache(64);
  const SlotProbCache::Entry e_pos = cache.lookup(0.0);
  const double neg_zero = std::bit_cast<double>(0x8000000000000000ULL);
  const SlotProbCache::Entry e_neg = cache.lookup(neg_zero);
  EXPECT_EQ(bits(e_pos.p), bits(e_neg.p));
  EXPECT_EQ(bits(e_pos.c_null), bits(e_neg.c_null));
  EXPECT_EQ(bits(e_pos.c_single), bits(e_neg.c_single));
  EXPECT_EQ(cache.misses(), 2u);  // distinct keys, two inserts
}

TEST(SlotProbCache, RejectsZeroStations) {
  EXPECT_THROW(SlotProbCache cache(0), ContractViolation);
}

TEST(SlotProbCache, LatticeIndexAnswersRepeatLookupsWithoutProbing) {
  // With the LESK lattice registered, the second pass over the same u
  // values must be answered entirely by the dense index.
  SlotProbCache cache(1024);
  const double inc = 1.0 / (8.0 / 0.5);
  cache.set_lattice_step(inc);
  std::vector<double> us;
  double u = 6.0;
  Rng rng(11);
  for (int step = 0; step < 400; ++step) {
    us.push_back(u);
    u = rng.bernoulli(0.5) ? std::max(u - 1.0, 0.0) : u + inc;
  }
  for (const double v : us) expect_entry_exact(cache, v);
  const std::uint64_t misses = cache.misses();
  const std::uint64_t dense_before = cache.dense_hits();
  const std::uint64_t lookups_before = cache.lookups();
  for (const double v : us) expect_entry_exact(cache, v);
  EXPECT_EQ(cache.misses(), misses);  // nothing re-inserted
  EXPECT_EQ(cache.dense_hits() - dense_before,
            cache.lookups() - lookups_before);
}

TEST(SlotProbCache, LatticeIndexIsTransparentForOffLatticeKeys) {
  // u values that don't sit on the registered lattice (or fall outside
  // the dense range) must still resolve exactly via the hash path.
  SlotProbCache cache(255);
  cache.set_lattice_step(0.0625);
  Rng rng(29);
  for (int k = 0; k < 300; ++k) {
    expect_entry_exact(cache, rng.uniform() * 80.0);  // off-lattice
  }
  expect_entry_exact(cache, 1e9);     // far outside dense range
  expect_entry_exact(cache, 1e-300);  // rounds to slot 0 but wrong key
}

TEST(SlotProbCache, LookupLanesMatchesScalarLookups) {
  SlotProbCache cache(512);
  cache.set_lattice_step(0.125);
  const double us[6] = {0.0, 0.125, 9.0, 9.125, 0.125, 4.5};
  double c_null[6], c_single[6], exp_tx[6];
  cache.lookup_lanes(us, 6, c_null, c_single, exp_tx);
  SlotProbCache twin(512);
  for (int k = 0; k < 6; ++k) {
    const SlotProbCache::Entry e = twin.lookup(us[k]);
    ASSERT_EQ(bits(c_null[k]), bits(e.c_null)) << "lane " << k;
    ASSERT_EQ(bits(c_single[k]), bits(e.c_single)) << "lane " << k;
    ASSERT_EQ(bits(exp_tx[k]), bits(e.exp_tx)) << "lane " << k;
  }
}

TEST(SlotProbCache, LookupLanesIdenticalAcrossBackends) {
  // The AVX2 gather path must be invisible: bit-identical entries and
  // identical counter deltas versus the portable per-lane loop, for
  // lane sets mixing dense hits, off-lattice values, out-of-range
  // exponents, dense-bucket collisions, and a non-multiple-of-4 count.
  std::vector<WideIsa> isas{WideIsa::kScalar4};
  if (wide_avx2_supported()) isas.push_back(WideIsa::kAvx2);

  const std::vector<double> us = {0.0, 0.125,  0.25,  6.0, 6.125, 0.125, 3.7,
                                  1e9, 128.75, 0.375, 1e-300, 9.0, 0.5};

  struct Observed {
    std::vector<std::uint64_t> entry_bits;
    std::uint64_t lookups, misses, dense;
  };
  std::vector<Observed> per_isa;
  for (const WideIsa isa : isas) {
    set_wide_isa_for_testing(isa);
    SlotProbCache cache(1024);
    cache.set_lattice_step(0.125);
    std::vector<double> c_null(us.size()), c_single(us.size()), ex(us.size());
    // Two passes: the first is miss-heavy and installs the dense
    // entries, the second exercises the all-hit gather groups.
    for (int pass = 0; pass < 2; ++pass) {
      cache.lookup_lanes(us.data(), us.size(), c_null.data(), c_single.data(),
                         ex.data());
    }
    Observed o{{}, cache.lookups(), cache.misses(), cache.dense_hits()};
    for (std::size_t k = 0; k < us.size(); ++k) {
      o.entry_bits.push_back(bits(c_null[k]));
      o.entry_bits.push_back(bits(c_single[k]));
      o.entry_bits.push_back(bits(ex[k]));
      // Ground truth: the uncached call chain, to the last bit.
      const double p = transmit_probability(us[k]);
      const SlotProbabilities probs = slot_probabilities(cache.n(), p);
      EXPECT_EQ(bits(c_null[k]), bits(probs.null)) << "lane " << k;
      EXPECT_EQ(bits(c_single[k]), bits(probs.null + probs.single))
          << "lane " << k;
      EXPECT_EQ(bits(ex[k]), bits(static_cast<double>(cache.n()) * p))
          << "lane " << k;
    }
    per_isa.push_back(std::move(o));
  }
  reset_wide_isa_for_testing();
  for (std::size_t i = 1; i < per_isa.size(); ++i) {
    EXPECT_EQ(per_isa[i].entry_bits, per_isa[0].entry_bits);
    EXPECT_EQ(per_isa[i].lookups, per_isa[0].lookups);
    EXPECT_EQ(per_isa[i].misses, per_isa[0].misses);
    EXPECT_EQ(per_isa[i].dense, per_isa[0].dense);
  }
}

TEST(SlotProbCache, CountsLookupsHitsAndMisses) {
  SlotProbCache cache(64);
  (void)cache.lookup(1.0);
  (void)cache.lookup(1.0);
  (void)cache.lookup(2.0);
  EXPECT_EQ(cache.lookups(), 3u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.dense_hits(), 0u);  // no lattice registered
}

}  // namespace
}  // namespace jamelect
