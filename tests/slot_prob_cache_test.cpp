// SlotProbCache must be a transparent memo of the uncached call chain:
// lookup(u) returns the exact doubles of transmit_probability(u) +
// slot_probabilities(n, p), for any u, across growth and collisions.
#include "support/slot_prob_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "support/math.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

[[nodiscard]] std::uint64_t bits(double x) {
  return std::bit_cast<std::uint64_t>(x);
}

void expect_entry_exact(SlotProbCache& cache, double u) {
  const SlotProbCache::Entry& e = cache.lookup(u);
  const double p = transmit_probability(u);
  const SlotProbabilities probs = slot_probabilities(cache.n(), p);
  ASSERT_EQ(bits(e.p), bits(p)) << "u = " << u;
  ASSERT_EQ(bits(e.c_null), bits(probs.null)) << "u = " << u;
  ASSERT_EQ(bits(e.c_single), bits(probs.null + probs.single)) << "u = " << u;
}

TEST(SlotProbCache, MatchesUncachedPathOnLeskLattice) {
  // The u values LESK actually visits: multiples of eps/8 minus whole
  // steps, floored at 0.
  for (const std::uint64_t n : {1ULL, 2ULL, 37ULL, 1ULL << 20}) {
    SlotProbCache cache(n);
    const double inc = 1.0 / (8.0 / 0.5);
    double u = 0.0;
    Rng rng(7);
    for (int step = 0; step < 2000; ++step) {
      expect_entry_exact(cache, u);
      u = rng.bernoulli(0.5) ? std::max(u - 1.0, 0.0) : u + inc;
    }
  }
}

TEST(SlotProbCache, RepeatLookupsHitTheCache) {
  SlotProbCache cache(1024);
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 50; ++k) {
      (void)cache.lookup(static_cast<double>(k) * 0.0625);
    }
  }
  EXPECT_EQ(cache.misses(), 50u);  // only the first round inserted
  EXPECT_EQ(cache.size(), 50u);
}

TEST(SlotProbCache, SurvivesGrowth) {
  SlotProbCache cache(255, /*initial_capacity=*/8);
  std::vector<double> us;
  Rng rng(13);
  for (int k = 0; k < 500; ++k) us.push_back(rng.uniform() * 64.0);
  for (const double u : us) expect_entry_exact(cache, u);
  // Everything inserted before growth must still be found afterwards.
  const std::uint64_t misses = cache.misses();
  for (const double u : us) expect_entry_exact(cache, u);
  EXPECT_EQ(cache.misses(), misses);
}

TEST(SlotProbCache, HandlesExtremeExponents) {
  SlotProbCache cache(1ULL << 20);
  expect_entry_exact(cache, 0.0);     // p = 1
  expect_entry_exact(cache, 1e-300);  // p just below 1
  expect_entry_exact(cache, 1075.0);  // 2^-u underflows to 0
  expect_entry_exact(cache, 1e300);   // far past underflow
}

TEST(SlotProbCache, SignedZeroGetsItsOwnEntryWithEqualPayload) {
  // -0.0 has a distinct bit pattern; if a protocol ever produced it,
  // the cache must not confuse it with the empty sentinel and must
  // return the same probabilities as +0.0 (transmit_probability treats
  // them identically).
  SlotProbCache cache(64);
  const SlotProbCache::Entry e_pos = cache.lookup(0.0);
  const double neg_zero = std::bit_cast<double>(0x8000000000000000ULL);
  const SlotProbCache::Entry e_neg = cache.lookup(neg_zero);
  EXPECT_EQ(bits(e_pos.p), bits(e_neg.p));
  EXPECT_EQ(bits(e_pos.c_null), bits(e_neg.c_null));
  EXPECT_EQ(bits(e_pos.c_single), bits(e_neg.c_single));
  EXPECT_EQ(cache.misses(), 2u);  // distinct keys, two inserts
}

TEST(SlotProbCache, RejectsZeroStations) {
  EXPECT_THROW(SlotProbCache cache(0), ContractViolation);
}

}  // namespace
}  // namespace jamelect
