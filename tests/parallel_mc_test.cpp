// Scheduling determinism of the multi-core wide-batch orchestrator:
// per-trial TrialOutcomes must be bit-identical across thread counts
// (pools pinned to 1, 3, and 8 workers via McConfig::pool), lane modes,
// and RNG backends — with partial final chunks in play — and a mid-run
// cooperative shutdown must drain to a chunk-aligned subset whose
// outcomes match the uninterrupted run trial for trial.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "protocols/lesk.hpp"
#include "sim/batch.hpp"
#include "sim/montecarlo.hpp"
#include "support/shutdown.hpp"
#include "support/thread_pool.hpp"

namespace jamelect {
namespace {

void expect_outcome_eq(const TrialOutcome& a, const TrialOutcome& b,
                       const std::string& what, std::size_t trial) {
  ASSERT_EQ(a.elected, b.elected) << what << " trial " << trial;
  ASSERT_EQ(a.slots, b.slots) << what << " trial " << trial;
  ASSERT_EQ(a.jams, b.jams) << what << " trial " << trial;
  ASSERT_EQ(a.nulls, b.nulls) << what << " trial " << trial;
  ASSERT_EQ(a.singles, b.singles) << what << " trial " << trial;
  ASSERT_EQ(a.collisions, b.collisions) << what << " trial " << trial;
  ASSERT_EQ(a.transmissions, b.transmissions) << what << " trial " << trial;
}

[[nodiscard]] bool outcome_equal(const TrialOutcome& a, const TrialOutcome& b) {
  return a.elected == b.elected && a.slots == b.slots && a.jams == b.jams &&
         a.nulls == b.nulls && a.singles == b.singles &&
         a.collisions == b.collisions && a.transmissions == b.transmissions;
}

UniformProtocolFactory lesk_factory() {
  return [] { return std::make_unique<Lesk>(LeskParams{0.5, 0.0}); };
}

/// A lane-invariant jamming adversary so BatchLaneMode::kWide is legal.
AdversarySpec saturating() {
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 32;
  spec.eps = 0.5;
  return spec;
}

/// trials = 20 with batch = 7 forces a partial final chunk (7, 7, 6).
McConfig orchestrated(RngBackend rng, BatchLaneMode lanes, ThreadPool* pool) {
  McConfig config;
  config.trials = 20;
  config.seed = 0x5eedULL;
  config.max_slots = 20'000;
  config.parallel = pool != nullptr;
  config.batch = 7;
  config.batch_lanes = lanes;
  config.rng_backend = rng;
  config.pool = pool;
  config.keep_outcomes = true;
  return config;
}

const char* backend_name(RngBackend rng) {
  return rng == RngBackend::kAesCtr ? "aes_ctr" : "xoshiro";
}

TEST(ParallelMc, OutcomesInvariantAcrossPoolSizesLaneModesAndBackends) {
  // The orchestrator contract: for a fixed backend, every combination
  // of worker count and lane mode yields the same per-trial outcomes as
  // the sequential chunk walk — chunk partitioning and work-stealing
  // order must never touch a random draw.
  for (const RngBackend rng : {RngBackend::kXoshiro, RngBackend::kAesCtr}) {
    const McResult reference = run_aggregate_mc(
        lesk_factory(), saturating(), 256,
        orchestrated(rng, BatchLaneMode::kScalarLanes, nullptr));
    ASSERT_EQ(reference.outcomes.size(), 20u);
    for (const BatchLaneMode mode :
         {BatchLaneMode::kScalarLanes, BatchLaneMode::kWide,
          BatchLaneMode::kAuto}) {
      for (const std::size_t workers : {1u, 3u, 8u}) {
        ThreadPool pool(workers);
        ASSERT_EQ(pool.size(), workers);
        const McResult result = run_aggregate_mc(
            lesk_factory(), saturating(), 256, orchestrated(rng, mode, &pool));
        const std::string what = std::string(backend_name(rng)) + "/mode" +
                                 std::to_string(static_cast<int>(mode)) +
                                 "/workers" + std::to_string(workers);
        ASSERT_EQ(result.outcomes.size(), reference.outcomes.size()) << what;
        for (std::size_t t = 0; t < reference.outcomes.size(); ++t) {
          expect_outcome_eq(reference.outcomes[t], result.outcomes[t], what,
                            t);
        }
      }
    }
  }
}

TEST(ParallelMc, HybridOutcomesInvariantAcrossPoolSizesAndBackends) {
  for (const RngBackend rng : {RngBackend::kXoshiro, RngBackend::kAesCtr}) {
    const McResult reference =
        run_hybrid_mc(lesk_factory(), saturating(), 256,
                      orchestrated(rng, BatchLaneMode::kWide, nullptr));
    ASSERT_EQ(reference.outcomes.size(), 20u);
    for (const std::size_t workers : {1u, 3u, 8u}) {
      ThreadPool pool(workers);
      const McResult result =
          run_hybrid_mc(lesk_factory(), saturating(), 256,
                        orchestrated(rng, BatchLaneMode::kWide, &pool));
      const std::string what = std::string("hybrid/") + backend_name(rng) +
                               "/workers" + std::to_string(workers);
      ASSERT_EQ(result.outcomes.size(), reference.outcomes.size()) << what;
      for (std::size_t t = 0; t < reference.outcomes.size(); ++t) {
        expect_outcome_eq(reference.outcomes[t], result.outcomes[t], what, t);
      }
    }
  }
}

TEST(ParallelMc, XoshiroOrchestratorMatchesSequentialUnbatchedReference) {
  // The xoshiro backend is not merely internally consistent: batched +
  // parallel + wide must reproduce the plain sequential per-trial path
  // bit for bit (same mix64(seed, k) stream derivation).
  McConfig seq;
  seq.trials = 20;
  seq.seed = 0x5eedULL;
  seq.max_slots = 20'000;
  seq.parallel = false;
  seq.keep_outcomes = true;
  const McResult reference =
      run_aggregate_mc(lesk_factory(), saturating(), 256, seq);
  ThreadPool pool(3);
  const McResult batched = run_aggregate_mc(
      lesk_factory(), saturating(), 256,
      orchestrated(RngBackend::kXoshiro, BatchLaneMode::kWide, &pool));
  ASSERT_EQ(batched.outcomes.size(), reference.outcomes.size());
  for (std::size_t t = 0; t < reference.outcomes.size(); ++t) {
    expect_outcome_eq(reference.outcomes[t], batched.outcomes[t], "seq-ref",
                      t);
  }
}

TEST(ParallelMc, AesBackendIsADistinctResultUniverse) {
  // aes_ctr is a different (internally consistent) stream family, not a
  // re-encoding of xoshiro: the sweeps must disagree somewhere.
  const McResult xo = run_aggregate_mc(
      lesk_factory(), saturating(), 256,
      orchestrated(RngBackend::kXoshiro, BatchLaneMode::kWide, nullptr));
  const McResult aes = run_aggregate_mc(
      lesk_factory(), saturating(), 256,
      orchestrated(RngBackend::kAesCtr, BatchLaneMode::kWide, nullptr));
  ASSERT_EQ(xo.outcomes.size(), aes.outcomes.size());
  bool any_diff = false;
  for (std::size_t t = 0; t < xo.outcomes.size(); ++t) {
    if (!outcome_equal(xo.outcomes[t], aes.outcomes[t])) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "aes_ctr reproduced the xoshiro sweep exactly";
}

TEST(ParallelMc, MidRunDrainIsChunkAlignedSubsetOnPinnedPool) {
  // Race a cooperative shutdown against an orchestrated sweep on a
  // pinned 3-worker pool. Chunks are all-or-nothing, so the partial
  // result must cover a whole number of chunks, and — because trial k's
  // outcome depends only on (seed, k) — every completed chunk must
  // match the same chunk of an uninterrupted run bit for bit.
  struct Guard {
    Guard() { clear_shutdown(); }
    ~Guard() { clear_shutdown(); }
  } guard;

  constexpr std::size_t kTrials = 50'000;
  constexpr std::size_t kBatch = 8;  // divides kTrials: all chunks whole
  ThreadPool pool(3);
  McConfig config =
      orchestrated(RngBackend::kAesCtr, BatchLaneMode::kWide, &pool);
  config.trials = kTrials;
  config.batch = kBatch;
  config.max_slots = 10'000;

  std::thread killer([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    request_shutdown();
  });
  const McResult partial =
      run_aggregate_mc(lesk_factory(), AdversarySpec{}, 256, config);
  killer.join();
  clear_shutdown();
  if (!partial.interrupted) GTEST_SKIP() << "sweep outran the shutdown";
  ASSERT_LT(partial.trials, kTrials);
  EXPECT_LE(partial.successes, partial.trials);
  EXPECT_EQ(partial.outcomes.size(), partial.trials);
  EXPECT_EQ(partial.trials % kBatch, 0u) << "mid-chunk tear";

  McConfig full_config = config;
  full_config.pool = nullptr;
  full_config.parallel = false;
  const McResult full =
      run_aggregate_mc(lesk_factory(), AdversarySpec{}, 256, full_config);
  ASSERT_FALSE(full.interrupted);
  ASSERT_EQ(full.outcomes.size(), kTrials);
  // The partial outcomes are whole chunks in trial order; match them
  // greedily against the full run's chunk sequence.
  std::size_t matched = 0;
  for (std::size_t chunk = 0; chunk * kBatch < kTrials; ++chunk) {
    if (matched >= partial.outcomes.size()) break;
    bool equal = true;
    for (std::size_t i = 0; i < kBatch; ++i) {
      if (!outcome_equal(partial.outcomes[matched + i],
                         full.outcomes[chunk * kBatch + i])) {
        equal = false;
        break;
      }
    }
    if (equal) matched += kBatch;
  }
  EXPECT_EQ(matched, partial.outcomes.size())
      << "some completed chunk matches no chunk of the full run";
}

TEST(ParallelMc, OrchestrationMetricsRollUp) {
  if constexpr (!obs::kObsCompiledIn) {
    GTEST_SKIP() << "JAMELECT_OBS compiled out";
  }
  auto& reg = obs::MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.reset();
  reg.set_enabled(true);
  ThreadPool pool(3);
  (void)run_aggregate_mc(
      lesk_factory(), saturating(), 256,
      orchestrated(RngBackend::kAesCtr, BatchLaneMode::kWide, &pool));
  const auto snap = reg.aggregate();
  reg.set_enabled(was_enabled);
  // 20 trials in chunks of 7 -> 3 chunk work items.
  ASSERT_TRUE(snap.counters.count("mc.parallel_chunks"));
  EXPECT_EQ(snap.counters.at("mc.parallel_chunks"), 3);
  // Kernelizable protocol + lane-invariant policy: no backend fallback.
  ASSERT_TRUE(snap.counters.count("mc.rng_backend_fallbacks"));
  EXPECT_EQ(snap.counters.at("mc.rng_backend_fallbacks"), 0);
  // Per-worker workspaces are registered even when reuse is zero.
  EXPECT_TRUE(snap.counters.count("mc.parallel_cache_reuse"));
  // Effective width gauge: 3 workers + the participating caller.
  ASSERT_TRUE(snap.gauges.count("mc.parallel_width"));
  EXPECT_EQ(snap.gauges.at("mc.parallel_width"), 4.0);
}

}  // namespace
}  // namespace jamelect
