// WideXoshiro must reproduce the scalar Rng streams bit for bit on
// every backend — the wide batch engines' bit-identity contract
// bottoms out here. Each test that depends on the backend runs under
// both (AVX2 when the machine supports it, the portable 4-wide path
// always) via the set_wide_isa_for_testing hook.
#include "support/wide_rng.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace jamelect {
namespace {

[[nodiscard]] std::uint64_t bits(double x) {
  return std::bit_cast<std::uint64_t>(x);
}

/// Backends available on this machine: scalar4 always, avx2 if usable.
[[nodiscard]] std::vector<WideIsa> available_isas() {
  std::vector<WideIsa> isas{WideIsa::kScalar4};
  if (wide_avx2_supported()) isas.push_back(WideIsa::kAvx2);
  return isas;
}

/// Pins the backend for the duration of a scope.
class IsaGuard {
 public:
  explicit IsaGuard(WideIsa isa) { set_wide_isa_for_testing(isa); }
  ~IsaGuard() { reset_wide_isa_for_testing(); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;
};

TEST(WideRng, ScalarLaneOpsMatchRngExactly) {
  // next/uniform/below per lane against the scalar engine, including a
  // non-power-of-two below() bound (rejection path).
  WideXoshiro wide(3);
  std::vector<Rng> scalars;
  for (std::size_t k = 0; k < 3; ++k) {
    const std::uint64_t seed = 0x9e37'79b9'0000'0000ULL + k;
    wide.seed_lane(k, seed);
    scalars.emplace_back(seed);
  }
  for (int step = 0; step < 200; ++step) {
    for (std::size_t k = 0; k < 3; ++k) {
      ASSERT_EQ(wide.next_lane(k), scalars[k].next_u64());
      ASSERT_EQ(bits(wide.uniform_lane(k)), bits(scalars[k].uniform()));
      ASSERT_EQ(wide.below_lane(k, 1), scalars[k].below(1));
      ASSERT_EQ(wide.below_lane(k, 64), scalars[k].below(64));
      ASSERT_EQ(wide.below_lane(k, 37), scalars[k].below(37));
    }
  }
}

TEST(WideRng, UniformGroupsMatchesScalarStreamsOnEveryBackend) {
  for (const WideIsa isa : available_isas()) {
    IsaGuard guard(isa);
    // 7 lanes: one full group plus a partial (pad lane advances too but
    // its output is ignored).
    WideXoshiro wide(7);
    std::vector<Rng> scalars;
    for (std::size_t k = 0; k < 7; ++k) {
      const std::uint64_t seed = 1000 + 17 * k;
      wide.seed_lane(k, seed);
      scalars.emplace_back(seed);
    }
    std::vector<double> out(wide.padded_lanes());
    for (int step = 0; step < 500; ++step) {
      wide.uniform_groups(2, out.data());
      for (std::size_t k = 0; k < 7; ++k) {
        ASSERT_EQ(bits(out[k]), bits(scalars[k].uniform()))
            << wide_isa_name(isa) << " lane " << k << " step " << step;
      }
    }
  }
}

TEST(WideRng, UniformMaskedAdvancesOnlyMaskedLanes) {
  for (const WideIsa isa : available_isas()) {
    IsaGuard guard(isa);
    WideXoshiro wide(8);
    std::vector<Rng> scalars;
    for (std::size_t k = 0; k < 8; ++k) {
      wide.seed_lane(k, 77 + k);
      scalars.emplace_back(77 + k);
    }
    std::vector<double> out(8, -1.0);
    Rng pattern(3);
    for (int step = 0; step < 300; ++step) {
      // Random mask each step: exercises full groups, partial groups,
      // and all-zero groups.
      std::vector<std::uint8_t> mask(8);
      for (auto& m : mask) m = pattern.bernoulli(0.5) ? 1 : 0;
      wide.uniform_masked(2, mask.data(), out.data());
      for (std::size_t k = 0; k < 8; ++k) {
        if (mask[k] != 0) {
          ASSERT_EQ(bits(out[k]), bits(scalars[k].uniform()))
              << wide_isa_name(isa) << " lane " << k << " step " << step;
        }
      }
    }
    // Unmasked lanes never moved: their next draw still matches.
    for (std::size_t k = 0; k < 8; ++k) {
      ASSERT_EQ(wide.next_lane(k), scalars[k].next_u64());
    }
  }
}

TEST(WideRng, MoveLaneCopiesTheStream) {
  WideXoshiro wide(5);
  for (std::size_t k = 0; k < 5; ++k) wide.seed_lane(k, 42 + k);
  (void)wide.next_lane(4);  // advance src so dst must copy mid-stream
  Rng twin(46);
  (void)twin.next_u64();
  wide.move_lane(1, 4);
  for (int step = 0; step < 50; ++step) {
    ASSERT_EQ(wide.next_lane(1), twin.next_u64());
  }
}

TEST(WideRng, PadsToGroupMultiple) {
  EXPECT_EQ(WideXoshiro(1).padded_lanes(), kWideLanes);
  EXPECT_EQ(WideXoshiro(4).padded_lanes(), 4u);
  EXPECT_EQ(WideXoshiro(5).padded_lanes(), 8u);
  EXPECT_EQ(WideXoshiro(5).lanes(), 5u);
}

TEST(WideRng, IsaNamesAndOverrides) {
  EXPECT_STREQ(wide_isa_name(WideIsa::kScalar4), "scalar4");
  EXPECT_STREQ(wide_isa_name(WideIsa::kAvx2), "avx2");
  {
    IsaGuard guard(WideIsa::kScalar4);
    EXPECT_EQ(active_wide_isa(), WideIsa::kScalar4);
  }
  if (wide_avx2_supported()) {
    IsaGuard guard(WideIsa::kAvx2);
    EXPECT_EQ(active_wide_isa(), WideIsa::kAvx2);
  }
}

}  // namespace
}  // namespace jamelect
