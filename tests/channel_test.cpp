#include "channel/channel.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "support/expects.hpp"

namespace jamelect {
namespace {

TEST(ResolveSlot, UnjammedStates) {
  EXPECT_EQ(resolve_slot(0, false), ChannelState::kNull);
  EXPECT_EQ(resolve_slot(1, false), ChannelState::kSingle);
  EXPECT_EQ(resolve_slot(2, false), ChannelState::kCollision);
  EXPECT_EQ(resolve_slot(1000, false), ChannelState::kCollision);
}

TEST(ResolveSlot, JammingAlwaysCollides) {
  // Paper §1.1: a jammed slot is indistinguishable from >= 2
  // transmitters — even a lone transmission is destroyed.
  EXPECT_EQ(resolve_slot(0, true), ChannelState::kCollision);
  EXPECT_EQ(resolve_slot(1, true), ChannelState::kCollision);
  EXPECT_EQ(resolve_slot(5, true), ChannelState::kCollision);
}

TEST(ObserveSlot, StrongCdIsTransparent) {
  for (ChannelState s : {ChannelState::kNull, ChannelState::kSingle,
                         ChannelState::kCollision}) {
    EXPECT_EQ(observe_slot(s, false, CdMode::kStrong),
              static_cast<Observation>(s));
    EXPECT_EQ(observe_slot(s, true, CdMode::kStrong),
              static_cast<Observation>(s));
  }
}

TEST(ObserveSlot, WeakCdTransmitterAssumesCollision) {
  // Paper Function 3: "if transmitted then return Collision".
  EXPECT_EQ(observe_slot(ChannelState::kSingle, true, CdMode::kWeak),
            Observation::kCollision);
  EXPECT_EQ(observe_slot(ChannelState::kCollision, true, CdMode::kWeak),
            Observation::kCollision);
}

TEST(ObserveSlot, WeakCdListenerSeesTruth) {
  EXPECT_EQ(observe_slot(ChannelState::kNull, false, CdMode::kWeak),
            Observation::kNull);
  EXPECT_EQ(observe_slot(ChannelState::kSingle, false, CdMode::kWeak),
            Observation::kSingle);
  EXPECT_EQ(observe_slot(ChannelState::kCollision, false, CdMode::kWeak),
            Observation::kCollision);
}

TEST(ObserveSlot, NoCdConflatesNullAndCollision) {
  EXPECT_EQ(observe_slot(ChannelState::kNull, false, CdMode::kNone),
            Observation::kNoSingle);
  EXPECT_EQ(observe_slot(ChannelState::kCollision, false, CdMode::kNone),
            Observation::kNoSingle);
  EXPECT_EQ(observe_slot(ChannelState::kSingle, false, CdMode::kNone),
            Observation::kSingle);
  EXPECT_EQ(observe_slot(ChannelState::kSingle, true, CdMode::kNone),
            Observation::kNoSingle);
}

TEST(ToChannelState, RoundTripsAndRejectsNoSingle) {
  EXPECT_EQ(to_channel_state(Observation::kNull), ChannelState::kNull);
  EXPECT_EQ(to_channel_state(Observation::kSingle), ChannelState::kSingle);
  EXPECT_EQ(to_channel_state(Observation::kCollision),
            ChannelState::kCollision);
  EXPECT_THROW((void)to_channel_state(Observation::kNoSingle),
               ContractViolation);
}

TEST(ToString, AllEnumerators) {
  EXPECT_EQ(to_string(ChannelState::kNull), "Null");
  EXPECT_EQ(to_string(ChannelState::kSingle), "Single");
  EXPECT_EQ(to_string(ChannelState::kCollision), "Collision");
  EXPECT_EQ(to_string(CdMode::kStrong), "strong-CD");
  EXPECT_EQ(to_string(CdMode::kWeak), "weak-CD");
  EXPECT_EQ(to_string(CdMode::kNone), "no-CD");
  EXPECT_EQ(to_string(Observation::kNoSingle), "NoSingle");
}

// The weak-CD key invariant the paper's §3 reduction rests on: a
// transmitter's observation differs from a listener's ONLY when the
// true state is Single. (A transmitter with state Null is physically
// impossible — someone transmitted — so only the two reachable states
// are swept.)
class WeakCdDivergence : public ::testing::TestWithParam<ChannelState> {};

TEST_P(WeakCdDivergence, DivergesOnlyOnSingle) {
  const ChannelState s = GetParam();
  const Observation tx = observe_slot(s, true, CdMode::kWeak);
  const Observation rx = observe_slot(s, false, CdMode::kWeak);
  if (s == ChannelState::kSingle) {
    EXPECT_NE(tx, rx);
  } else {
    EXPECT_EQ(tx, rx);
  }
}

INSTANTIATE_TEST_SUITE_P(ReachableStates, WeakCdDivergence,
                         ::testing::Values(ChannelState::kSingle,
                                           ChannelState::kCollision));

}  // namespace
}  // namespace jamelect
