#include "support/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jamelect {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  const Cli cli = make({"--n=1024", "--eps=0.25", "--name=lesk"});
  EXPECT_EQ(cli.get_uint("n", 0), 1024u);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0), 0.25);
  EXPECT_EQ(cli.get_string("name", ""), "lesk");
}

TEST(Cli, SpaceForm) {
  const Cli cli = make({"--n", "42", "--label", "x"});
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_EQ(cli.get_string("label", ""), "x");
}

TEST(Cli, BareFlagIsTrue) {
  const Cli cli = make({"--verbose", "--n=1"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
}

TEST(Cli, BoolSpellings) {
  EXPECT_TRUE(make({"--x=YES"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=on"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=False"}).get_bool("x", true));
  EXPECT_THROW((void)make({"--x=maybe"}).get_bool("x", true),
               std::invalid_argument);
}

TEST(Cli, Defaults) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int("missing", -7), -7);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(cli.get_bool("missing", true));
}

TEST(Cli, Positional) {
  const Cli cli = make({"first", "--k=1", "second"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "first");
  EXPECT_EQ(cli.positional()[1], "second");
}

TEST(Cli, NegativeNumberAsValue) {
  // `--k -3`: the value token starts with '-' but not '--'.
  const Cli cli = make({"--k", "-3"});
  EXPECT_EQ(cli.get_int("k", 0), -3);
}

TEST(Cli, ProvidedNamesAndProgram) {
  const Cli cli = make({"--b=2", "--a=1"});
  EXPECT_EQ(cli.program(), "prog");
  const auto names = cli.provided_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // map order: sorted
  EXPECT_EQ(names[1], "b");
}

TEST(Cli, LastValueWins) {
  const Cli cli = make({"--n=1", "--n=2"});
  EXPECT_EQ(cli.get_int("n", 0), 2);
}

}  // namespace
}  // namespace jamelect
