// End-to-end scenarios across the whole stack: protocols + adversaries +
// engines + analysis, the way a downstream user would compose them.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "analysis/slot_taxonomy.hpp"
#include "analysis/theory.hpp"
#include "protocols/interval_partition.hpp"
#include "protocols/lesk.hpp"
#include "protocols/lewk.hpp"
#include "sim/aggregate.hpp"
#include "sim/montecarlo.hpp"
#include "support/stats.hpp"

namespace jamelect {
namespace {

TEST(Integration, LeskFinishesWithinTheoryBudget) {
  // Theorem 2.6's explicit t with beta = 1 must cover the empirical
  // distribution comfortably (it is a w.h.p. bound with generous
  // constants).
  const std::uint64_t n = 4096;
  const double eps = 0.5;
  const double budget = lesk_time_bound(n, eps, 1.0);
  McConfig mc;
  mc.trials = 100;
  mc.seed = 42;
  mc.max_slots = static_cast<std::int64_t>(budget) + 64;
  AdversarySpec sat;
  sat.policy = "saturating";
  sat.T = 64;
  sat.eps = eps;
  const auto res = run_aggregate_mc(
      [eps] { return std::make_unique<Lesk>(eps); }, sat, n, mc);
  EXPECT_EQ(res.successes, res.trials);
  EXPECT_LT(res.slots.p99, budget);
}

TEST(Integration, MeasuredLowerBoundRespectsLemma27) {
  // Under the periodic blocking adversary, no run beats the
  // information-theoretic floor of (roughly) the first unjammed slot.
  const std::uint64_t n = 1024;
  McConfig mc;
  mc.trials = 50;
  mc.seed = 7;
  mc.max_slots = 1 << 20;
  AdversarySpec periodic;
  periodic.policy = "periodic";
  periodic.T = 512;
  periodic.eps = 0.25;
  const auto res = run_aggregate_mc(
      [] { return std::make_unique<Lesk>(0.25); }, periodic, n, mc);
  EXPECT_EQ(res.successes, res.trials);
  // The first ~(1-eps)*T slots of every period are iced; electing needs
  // at least a handful of live slots.
  EXPECT_GT(res.slots.min, 8.0);
}

TEST(Integration, RepeatedEpochsElectDistinctLeadersOverTime) {
  // A sensor-network pattern: re-run the election each epoch; over many
  // epochs different stations win (fairness sanity, exchangeability).
  const std::uint64_t n = 32;
  std::set<StationId> winners;
  Rng rng(2024);
  for (int epoch = 0; epoch < 40; ++epoch) {
    Lesk lesk(0.5);
    auto adv = make_adversary(AdversarySpec{}, rng.child(
        static_cast<std::uint64_t>(2 * epoch)));
    Rng sim = rng.child(static_cast<std::uint64_t>(2 * epoch + 1));
    const auto out = run_aggregate(lesk, *adv, {n, 100000}, sim);
    ASSERT_TRUE(out.elected);
    winners.insert(*out.leader);
  }
  EXPECT_GT(winners.size(), 5u);
}

TEST(Integration, WeakCdCostsOnlyConstantFactor) {
  // Lemma 3.1: LEWK within a constant factor of LESK. Measure both at
  // two sizes; the ratio must stay bounded (we allow a generous 24x;
  // the Notification machinery inherently multiplies by ~8).
  for (std::uint64_t n : {64ULL, 1024ULL}) {
    McConfig mc;
    mc.trials = 60;
    mc.seed = 1000 + n;
    mc.max_slots = 1 << 21;
    AdversarySpec none;
    const auto strong = run_aggregate_mc(
        [] { return std::make_unique<Lesk>(0.5); }, none, n, mc);
    const auto weak = run_hybrid_mc(
        [] { return std::make_unique<Lesk>(0.5); }, none, n, mc);
    ASSERT_EQ(strong.successes, mc.trials);
    ASSERT_EQ(weak.successes, mc.trials);
    EXPECT_LT(weak.slots.mean, 24.0 * strong.slots.mean + 64.0) << n;
    EXPECT_GT(weak.slots.mean, strong.slots.mean) << n;
  }
}

TEST(Integration, TaxonomyExplainsWhyJammingSlows) {
  // Compare clean vs jammed traces: jamming converts would-be regular
  // slots into E slots; the count of regular slots needed before the
  // deciding Single stays comparable.
  const std::uint64_t n = 1024;
  const auto trace_for = [&](const std::string& policy, std::uint64_t seed) {
    Lesk lesk(0.5);
    AdversarySpec spec;
    spec.policy = policy;
    spec.T = 64;
    spec.eps = 0.5;
    spec.n = n;
    Rng rng(seed);
    auto adv = make_adversary(spec, rng.child(1));
    Rng sim = rng.child(2);
    Trace trace;
    const auto out = run_aggregate(lesk, *adv, {n, 1 << 21}, sim, &trace);
    EXPECT_TRUE(out.elected);
    return classify_trace(trace, n, 0.5);
  };
  std::int64_t clean_regular = 0, jammed_regular = 0, jammed_e = 0,
               clean_total = 0, jammed_total = 0;
  for (std::uint64_t s = 0; s < 15; ++s) {
    const auto clean = trace_for("none", 500 + s);
    const auto jam = trace_for("saturating", 600 + s);
    clean_regular += clean.regular;
    clean_total += clean.total();
    jammed_regular += jam.regular;
    jammed_e += jam.jammed;
    jammed_total += jam.total();
  }
  EXPECT_GT(jammed_e, 0);
  EXPECT_GT(jammed_total, clean_total);  // jamming costs wall-clock slots
  // Regular-slot consumption before success is the invariant quantity:
  // same order of magnitude in both worlds.
  EXPECT_LT(std::abs(std::log2(static_cast<double>(jammed_regular) /
                               static_cast<double>(clean_regular))),
            2.5);
}

TEST(Integration, PartitionDrivesNotificationSchedule) {
  // White-box: run LEWK per-station with a trace and confirm all
  // pre-first-single transmissions happen in C1 slots only.
  Rng rng(77);
  std::vector<StationProtocolPtr> stations;
  for (int i = 0; i < 8; ++i) stations.push_back(make_lewk_station(0.5));
  auto adv = make_adversary(AdversarySpec{}, rng.child(1));
  SlotEngine eng(std::move(stations), std::move(adv), rng.child(2),
                 {CdMode::kWeak, StopRule::kAllDone, 1 << 20});
  Trace trace;
  const auto out = eng.run(&trace);
  ASSERT_TRUE(out.elected);
  bool seen_single = false;
  for (const auto& r : trace.records()) {
    if (r.state == ChannelState::kSingle) seen_single = true;
    if (!seen_single && r.transmitters > 0) {
      ASSERT_EQ(classify_slot(r.slot).set, IntervalSet::kC1) << r.slot;
    }
  }
}

}  // namespace
}  // namespace jamelect
