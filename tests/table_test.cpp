#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/expects.hpp"

namespace jamelect {
namespace {

TEST(Table, CellsAndTypes) {
  Table t({"name", "count", "ratio"});
  t.row() << "alpha" << std::int64_t{42} << 1.5;
  t.row() << "beta" << std::uint64_t{7} << 0.25;
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.cell(0, 0), "alpha");
  EXPECT_EQ(t.cell(0, 1), "42");
  EXPECT_EQ(t.cell(1, 2), "0.25");
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table t({}), ContractViolation);
}

TEST(Table, AsciiContainsHeadersAndValues) {
  Table t({"n", "slots"});
  t.row() << 1024 << 99.5;
  std::ostringstream out;
  t.print_ascii(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("slots"), std::string::npos);
  EXPECT_NE(s.find("1024"), std::string::npos);
  EXPECT_NE(s.find("99.5"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.row() << "plain" << "has,comma";
  t.row() << "has\"quote" << "x";
  std::ostringstream out;
  t.print_csv(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, MarkdownShape) {
  Table t({"x"});
  t.row() << 5;
  std::ostringstream out;
  t.print_markdown(out);
  EXPECT_EQ(out.str(), "| x |\n|---|\n| 5 |\n");
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b"});
  t.row() << "only";
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\nonly,\n");
}

TEST(Table, FormatPrecision) {
  Table t({"x"});
  t.set_precision(2);
  EXPECT_EQ(t.format(3.14159), "3.1");
  EXPECT_THROW(t.set_precision(0), ContractViolation);
}

TEST(Table, CellBoundsChecked) {
  Table t({"a"});
  t.row() << 1;
  EXPECT_THROW((void)t.cell(1, 0), ContractViolation);
  EXPECT_THROW((void)t.cell(0, 1), ContractViolation);
}

}  // namespace
}  // namespace jamelect
