// Parameterized numeric validation of Lemma 2.1 and Lemma 2.2 — the
// probability inequalities the whole LESK analysis (and our taxonomy
// thresholds and adversary mirrors) rest on.
#include "analysis/lemma_checks.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace jamelect {
namespace {

class Lemma21 : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(Lemma21, NullUpperBound) {
  const auto [n, x] = GetParam();
  const auto s = lemma21_sides(n, x);
  EXPECT_LE(s.exact.null, s.null_upper + 1e-12) << "n=" << n << " x=" << x;
}

TEST_P(Lemma21, CollisionUpperBound) {
  const auto [n, x] = GetParam();
  const auto s = lemma21_sides(n, x);
  EXPECT_LE(s.exact.collision, s.collision_upper + 1e-12)
      << "n=" << n << " x=" << x;
}

TEST_P(Lemma21, SingleLowerBoundExp) {
  const auto [n, x] = GetParam();
  // Part 3 of the lemma is exact only for x >= 1 at finite n (for
  // x < 1 it holds asymptotically; the paper applies it in regimes
  // where the slack is positive — Lemma24 below checks the actual
  // downstream claim numerically).
  if (x < 1.0) GTEST_SKIP();
  const auto s = lemma21_sides(n, x);
  EXPECT_GE(s.exact.single, s.single_lower_exp - 1e-12)
      << "n=" << n << " x=" << x;
}

TEST_P(Lemma21, SingleLowerBoundPoly) {
  const auto [n, x] = GetParam();
  const auto s = lemma21_sides(n, x);
  EXPECT_GE(s.exact.single, s.single_lower_poly - 1e-12)
      << "n=" << n << " x=" << x;
}

// The lemma assumes n > 1 and x > 0 with p = 1/(xn) <= 1, i.e. x >= 1/n;
// sweep a wide grid of both regimes (x < 1 loud, x > 1 quiet).
INSTANTIATE_TEST_SUITE_P(
    Grid, Lemma21,
    ::testing::Combine(::testing::Values<std::uint64_t>(2, 3, 10, 115, 1024,
                                                        1 << 16, 1 << 22),
                       ::testing::Values(0.51, 1.0, 1.5, 2.0, 4.0, 16.0, 256.0,
                                         65536.0)));

class Lemma22 : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(Lemma22, IrregularSilenceProbabilityAtMostInverseASquared) {
  const auto [n, a] = GetParam();
  // The IS boundary needs p = 2 ln(a)/n <= 1.
  if (2.0 * std::log(a) > static_cast<double>(n)) GTEST_SKIP();
  const auto s = lemma22_sides(n, a);
  EXPECT_LE(s.is_probability, s.is_bound + 1e-12) << "n=" << n << " a=" << a;
}

TEST_P(Lemma22, IrregularCollisionProbabilityAtMostInverseA) {
  const auto [n, a] = GetParam();
  const auto s = lemma22_sides(n, a);
  EXPECT_LE(s.ic_probability, s.ic_bound + 1e-12) << "n=" << n << " a=" << a;
}

// a = 8/eps >= 8 for eps <= 1.
INSTANTIATE_TEST_SUITE_P(
    Grid, Lemma22,
    ::testing::Combine(::testing::Values<std::uint64_t>(2, 16, 115, 4096,
                                                        1 << 20),
                       ::testing::Values(8.0, 16.0, 64.0, 800.0)));

// Lemma 2.4's regular-slot Single bound: for u in the regular band the
// Single probability is at least C = ln(a)/a^2.
class Lemma24 : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(Lemma24, RegularSlotSingleProbability) {
  const auto [n, a] = GetParam();
  const double u0 = std::log2(static_cast<double>(n));
  const double lo = u0 - std::log2(2.0 * std::log(a));
  const double hi = u0 + 0.5 * std::log2(a);
  const double C = std::log(a) / (a * a);
  for (double u = std::max(0.0, lo); u <= hi; u += 0.25) {
    const double p = std::exp2(-u);
    if (p > 1.0) continue;
    const double single = slot_probabilities(n, p).single;
    ASSERT_GE(single, C) << "n=" << n << " a=" << a << " u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Lemma24,
    ::testing::Combine(::testing::Values<std::uint64_t>(64, 1024, 1 << 16),
                       ::testing::Values(8.0, 16.0, 64.0)));

}  // namespace
}  // namespace jamelect
