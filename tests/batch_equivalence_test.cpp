// The batched SoA engine (sim/batch.hpp, McConfig::batch) must return
// bit-identical per-trial TrialOutcomes to the sequential Monte-Carlo
// path for the same seed — for every kernelizable protocol, both CD
// modes (strong-CD aggregate, weak-CD hybrid Notification), any chunk
// size, and parallel on or off. These tests enforce exactly that, plus
// the silent fallback for non-kernelizable factories.
#include "sim/batch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "protocols/estimation.hpp"
#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "protocols/plain_uniform.hpp"
#include "sim/montecarlo.hpp"

namespace jamelect {
namespace {

void expect_outcome_eq(const TrialOutcome& a, const TrialOutcome& b,
                       std::size_t trial) {
  ASSERT_EQ(a.elected, b.elected) << "trial " << trial;
  ASSERT_EQ(a.slots, b.slots) << "trial " << trial;
  ASSERT_EQ(a.jams, b.jams) << "trial " << trial;
  ASSERT_EQ(a.nulls, b.nulls) << "trial " << trial;
  ASSERT_EQ(a.singles, b.singles) << "trial " << trial;
  ASSERT_EQ(a.collisions, b.collisions) << "trial " << trial;
  // Bit-identity, not approximate: the batch engine replays the exact
  // double arithmetic of the sequential path.
  ASSERT_EQ(a.transmissions, b.transmissions) << "trial " << trial;
  ASSERT_EQ(a.all_done, b.all_done) << "trial " << trial;
  ASSERT_EQ(a.unique_leader, b.unique_leader) << "trial " << trial;
  ASSERT_EQ(a.leader, b.leader) << "trial " << trial;
}

void expect_all_outcomes_eq(const McResult& a, const McResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t t = 0; t < a.outcomes.size(); ++t) {
    expect_outcome_eq(a.outcomes[t], b.outcomes[t], t);
  }
}

[[nodiscard]] McConfig base_config(std::size_t trials, std::uint64_t seed,
                                   std::int64_t max_slots) {
  McConfig config;
  config.trials = trials;
  config.seed = seed;
  config.max_slots = max_slots;
  config.parallel = false;
  config.keep_outcomes = true;
  return config;
}

struct Scenario {
  UniformProtocolFactory factory;
  AdversarySpec adversary;
  std::uint64_t n;
};

[[nodiscard]] std::vector<Scenario> scenarios() {
  std::vector<Scenario> list;
  {
    AdversarySpec none;
    none.policy = "none";
    list.push_back({[] { return std::make_unique<Lesk>(LeskParams{0.5, 0.0}); },
                    none, 64});
  }
  {
    AdversarySpec sat;
    sat.policy = "saturating";
    sat.T = 32;
    sat.eps = 0.5;
    list.push_back(
        {[] { return std::make_unique<Lesk>(LeskParams{0.25, 0.0}); }, sat,
         1024});
  }
  {
    AdversarySpec bern;
    bern.policy = "bernoulli";
    bern.T = 64;
    bern.eps = 0.25;
    list.push_back({[] { return std::make_unique<Lesu>(LesuParams{}); }, bern,
                    256});
  }
  {
    AdversarySpec per;
    per.policy = "periodic";
    per.T = 16;
    per.eps = 0.5;
    list.push_back({[] { return std::make_unique<PlainUniform>(6.0); }, per,
                    64});
  }
  return list;
}

TEST(BatchEquivalence, AggregateBitIdenticalAcrossChunkSizes) {
  for (const Scenario& sc : scenarios()) {
    const McConfig seq = base_config(37, 0xfeedULL, 20000);
    const McResult reference =
        run_aggregate_mc(sc.factory, sc.adversary, sc.n, seq);
    ASSERT_EQ(reference.outcomes.size(), seq.trials);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{5},
                                    std::size_t{7}, std::size_t{64}}) {
      McConfig cfg = seq;
      cfg.batch = batch;
      const McResult batched =
          run_aggregate_mc(sc.factory, sc.adversary, sc.n, cfg);
      expect_all_outcomes_eq(reference, batched);
    }
  }
}

TEST(BatchEquivalence, HybridBitIdenticalAcrossChunkSizes) {
  for (const Scenario& sc : scenarios()) {
    if (sc.n < 3) continue;
    const McConfig seq = base_config(23, 0xabcdULL, 30000);
    const McResult reference =
        run_hybrid_mc(sc.factory, sc.adversary, sc.n, seq);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{6},
                                    std::size_t{23}, std::size_t{64}}) {
      McConfig cfg = seq;
      cfg.batch = batch;
      const McResult batched =
          run_hybrid_mc(sc.factory, sc.adversary, sc.n, cfg);
      expect_all_outcomes_eq(reference, batched);
    }
  }
}

TEST(BatchEquivalence, ParallelSchedulingDoesNotChangeOutcomes) {
  const Scenario sc = scenarios()[1];  // LESK vs saturating at n = 1024
  const McConfig seq = base_config(48, 0x77ULL, 20000);
  const McResult reference =
      run_aggregate_mc(sc.factory, sc.adversary, sc.n, seq);
  McConfig cfg = seq;
  cfg.batch = 16;
  cfg.parallel = true;
  const McResult batched =
      run_aggregate_mc(sc.factory, sc.adversary, sc.n, cfg);
  expect_all_outcomes_eq(reference, batched);
}

TEST(BatchEquivalence, StreamingSummariesMatchSequential) {
  // keep_outcomes == false exercises the accumulator fold; with a
  // single thread the fold order matches the sequential path exactly,
  // so every summary field must be equal to the last bit.
  const Scenario sc = scenarios()[0];
  McConfig seq = base_config(64, 0x1234ULL, 20000);
  seq.keep_outcomes = false;
  const McResult reference =
      run_aggregate_mc(sc.factory, sc.adversary, sc.n, seq);
  McConfig cfg = seq;
  cfg.batch = 8;
  const McResult batched =
      run_aggregate_mc(sc.factory, sc.adversary, sc.n, cfg);
  EXPECT_EQ(reference.successes, batched.successes);
  EXPECT_EQ(reference.slots.mean, batched.slots.mean);
  EXPECT_EQ(reference.slots.max, batched.slots.max);
  EXPECT_EQ(reference.jams.mean, batched.jams.mean);
  EXPECT_EQ(reference.energy_per_station.mean,
            batched.energy_per_station.mean);
  EXPECT_TRUE(reference.outcomes.empty());
  EXPECT_TRUE(batched.outcomes.empty());
}

TEST(BatchEquivalence, NonKernelizableFactoryFallsBack) {
  // Estimation has no kernel twin: batch > 0 must silently take the
  // sequential path and produce the identical result.
  const UniformProtocolFactory factory = [] {
    return std::make_unique<Estimation>(2);
  };
  AdversarySpec none;
  none.policy = "none";
  const McConfig seq = base_config(16, 0x9ULL, 5000);
  const McResult reference = run_aggregate_mc(factory, none, 64, seq);
  McConfig cfg = seq;
  cfg.batch = 32;
  const McResult batched = run_aggregate_mc(factory, none, 64, cfg);
  expect_all_outcomes_eq(reference, batched);
}

TEST(BatchEquivalence, WarmStartedFactoryFallsBack) {
  // A pure factory producing warm-started instances is recognized as
  // non-fresh and routed to the virtual path — outcomes must still be
  // identical to batch == 0.
  const UniformProtocolFactory factory = [] {
    auto p = std::make_unique<Lesk>(LeskParams{0.5, 0.0});
    p->observe(ChannelState::kCollision);
    return p;
  };
  AdversarySpec sat;
  sat.policy = "saturating";
  sat.T = 32;
  sat.eps = 0.5;
  const McConfig seq = base_config(16, 0x31ULL, 10000);
  const McResult reference = run_aggregate_mc(factory, sat, 128, seq);
  McConfig cfg = seq;
  cfg.batch = 8;
  const McResult batched = run_aggregate_mc(factory, sat, 128, cfg);
  expect_all_outcomes_eq(reference, batched);
}

TEST(BatchEquivalence, TrialCountNotMultipleOfBatch) {
  const Scenario sc = scenarios()[0];
  const McConfig seq = base_config(13, 0x55ULL, 20000);
  const McResult reference =
      run_aggregate_mc(sc.factory, sc.adversary, sc.n, seq);
  McConfig cfg = seq;
  cfg.batch = 64;  // single partial chunk
  const McResult batched =
      run_aggregate_mc(sc.factory, sc.adversary, sc.n, cfg);
  expect_all_outcomes_eq(reference, batched);
}

TEST(BatchEquivalence, DirectChunkApiMatchesSweepSlicing) {
  // run_batch_aggregate_trials(first, count) must reproduce the same
  // trials regardless of how the sweep is sliced into chunks.
  const BatchKernelSpec spec{LeskParams{0.5, 0.0}};
  AdversarySpec sat;
  sat.policy = "saturating";
  sat.T = 16;
  sat.eps = 0.5;
  const BatchConfig config{256, 20000};
  const Rng base(0x51ceULL);
  std::vector<TrialOutcome> whole(20);
  run_batch_aggregate_trials(spec, sat, config, base, 0, 20, whole.data());
  std::vector<TrialOutcome> parts(20);
  run_batch_aggregate_trials(spec, sat, config, base, 0, 3, parts.data());
  run_batch_aggregate_trials(spec, sat, config, base, 3, 9, parts.data() + 3);
  run_batch_aggregate_trials(spec, sat, config, base, 12, 8,
                             parts.data() + 12);
  for (std::size_t t = 0; t < whole.size(); ++t) {
    expect_outcome_eq(whole[t], parts[t], t);
  }
}

}  // namespace
}  // namespace jamelect
