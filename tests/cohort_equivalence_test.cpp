// Cohort-engine validation: the cohort-compressed engine must agree in
// distribution with the exact per-station SlotEngine — same success
// rates, same slots-to-elect law, same energy, uniform leader identity
// — under both CD modes. The engines share no RNG stream (cohorts draw
// one binomial where SlotEngine draws |cohort| Bernoullis), so all
// comparisons are statistical, with the same generous 5-sigma bands as
// equivalence_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "protocols/lesk.hpp"
#include "protocols/lewk.hpp"
#include "protocols/uniform_station.hpp"
#include "sim/cohort.hpp"
#include "sim/montecarlo.hpp"
#include "support/expects.hpp"
#include "support/stats.hpp"

namespace jamelect {
namespace {

constexpr std::size_t kTrials = 300;

McConfig mc(std::uint64_t seed, std::int64_t max_slots) {
  McConfig c;
  c.trials = kTrials;
  c.seed = seed;
  c.max_slots = max_slots;
  return c;
}

StationProtocolPtr lesk_station() {
  return std::make_unique<UniformStationAdapter>(std::make_unique<Lesk>(0.5));
}

void expect_means_compatible(const Summary& a, const Summary& b) {
  // Two-sample z-ish test with a generous 5-sigma band.
  const double se = std::sqrt(a.stddev * a.stddev / static_cast<double>(a.count) +
                              b.stddev * b.stddev / static_cast<double>(b.count));
  EXPECT_LT(std::abs(a.mean - b.mean), 5.0 * se + 0.05 * (a.mean + b.mean))
      << "a=" << a.mean << " b=" << b.mean << " se=" << se;
}

class CohortEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CohortEquivalence, StrongCdLeskMatchesSlotEngine) {
  const std::uint64_t n = GetParam();
  AdversarySpec none;
  const EngineConfig engine{CdMode::kStrong, StopRule::kAllDone, 100000};
  const auto cohort =
      run_cohort_mc(lesk_station, none, n, engine, mc(142, 100000));
  const auto per = run_station_mc(
      [](StationId) { return lesk_station(); }, none, n, engine,
      mc(143, 100000));
  EXPECT_EQ(cohort.successes, kTrials);
  EXPECT_EQ(per.successes, kTrials);
  expect_means_compatible(cohort.slots, per.slots);
  expect_means_compatible(cohort.energy_per_station, per.energy_per_station);
}

TEST_P(CohortEquivalence, StrongCdLeskUnderJammingMatches) {
  const std::uint64_t n = GetParam();
  AdversarySpec sat;
  sat.policy = "saturating";
  sat.T = 32;
  sat.eps = 0.5;
  const EngineConfig engine{CdMode::kStrong, StopRule::kAllDone, 200000};
  const auto cohort =
      run_cohort_mc(lesk_station, sat, n, engine, mc(152, 200000));
  const auto per = run_station_mc(
      [](StationId) { return lesk_station(); }, sat, n, engine,
      mc(153, 200000));
  EXPECT_EQ(cohort.successes, kTrials);
  EXPECT_EQ(per.successes, kTrials);
  expect_means_compatible(cohort.slots, per.slots);
  expect_means_compatible(cohort.jams, per.jams);
}

TEST_P(CohortEquivalence, WeakCdFirstSingleMatchesSlotEngine) {
  // Bare LESK under weak-CD is selection resolution: stop at the first
  // un-jammed Single. The transmitter's view diverges exactly there, so
  // this exercises the split path at the deciding slot.
  const std::uint64_t n = GetParam();
  AdversarySpec none;
  const EngineConfig engine{CdMode::kWeak, StopRule::kFirstSingle, 100000};
  const auto cohort =
      run_cohort_mc(lesk_station, none, n, engine, mc(162, 100000));
  const auto per = run_station_mc(
      [](StationId) { return lesk_station(); }, none, n, engine,
      mc(163, 100000));
  EXPECT_EQ(cohort.successes, kTrials);
  EXPECT_EQ(per.successes, kTrials);
  expect_means_compatible(cohort.slots, per.slots);
}

TEST_P(CohortEquivalence, WeakCdLewkMatchesSlotEngine) {
  // Full weak-CD leader election (Notification over LESK): repeated
  // splits (C1/C2 Singles) and re-merges (confirmers converging) are
  // the hard case for cohort bookkeeping.
  const std::uint64_t n = GetParam();
  if (n < 3) GTEST_SKIP() << "Notification requires n >= 3";
  AdversarySpec none;
  const EngineConfig engine{CdMode::kWeak, StopRule::kAllDone, 1 << 20};
  const auto cohort = run_cohort_mc([] { return make_lewk_station(0.5); },
                                    none, n, engine, mc(172, 1 << 20));
  const auto per = run_station_mc(
      [](StationId) { return make_lewk_station(0.5); }, none, n, engine,
      mc(173, 1 << 20));
  EXPECT_EQ(cohort.successes, kTrials);
  EXPECT_EQ(per.successes, kTrials);
  expect_means_compatible(cohort.slots, per.slots);
  expect_means_compatible(cohort.energy_per_station, per.energy_per_station);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CohortEquivalence,
                         ::testing::Values<std::uint64_t>(3, 8, 32, 128));

TEST(CohortEngine, LeaderIdentityIsUniform) {
  // The engine never tracks member identities; the reported leader id
  // is drawn from the exchangeability marginal. Chi-square against
  // uniform over n = 8 stations.
  const std::uint64_t n = 8;
  McConfig c = mc(1818, 100000);
  c.trials = 400;
  c.keep_outcomes = true;
  const EngineConfig engine{CdMode::kStrong, StopRule::kAllDone, 100000};
  const auto res = run_cohort_mc(lesk_station, AdversarySpec{}, n, engine, c);
  ASSERT_EQ(res.successes, c.trials);
  std::vector<std::int64_t> counts(n, 0);
  for (const auto& o : res.outcomes) {
    ASSERT_TRUE(o.leader.has_value());
    ASSERT_LT(*o.leader, n);
    ++counts[*o.leader];
  }
  const double expected = static_cast<double>(c.trials) / static_cast<double>(n);
  double chi2 = 0.0;
  for (const auto cnt : counts) {
    const double d = static_cast<double>(cnt) - expected;
    chi2 += d * d / expected;
  }
  // df = 7: mean 7, sd sqrt(14) ~ 3.7 -> 7 + 5 sd ~ 26.
  EXPECT_LT(chi2, 26.0);
}

TEST(CohortEngine, SuccessRatesOverlapUnderCensoring) {
  // With a slot budget in the middle of the slots-to-elect distribution
  // both engines succeed on a nontrivial fraction of trials; the Wilson
  // intervals must overlap.
  const std::uint64_t n = 32;
  const EngineConfig engine{CdMode::kStrong, StopRule::kAllDone, 64};
  const auto cohort =
      run_cohort_mc(lesk_station, AdversarySpec{}, n, engine, mc(192, 64));
  const auto per =
      run_station_mc([](StationId) { return lesk_station(); }, AdversarySpec{},
                     n, engine, mc(193, 64));
  EXPECT_LE(cohort.success.lower, per.success.upper);
  EXPECT_LE(per.success.lower, cohort.success.upper);
}

TEST(CohortEngine, DeterministicForFixedSeed) {
  const EngineConfig engine{CdMode::kStrong, StopRule::kAllDone, 100000};
  const auto a =
      run_cohort_mc(lesk_station, AdversarySpec{}, 64, engine, mc(7, 100000));
  const auto b =
      run_cohort_mc(lesk_station, AdversarySpec{}, 64, engine, mc(7, 100000));
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_DOUBLE_EQ(a.slots.mean, b.slots.mean);
  EXPECT_DOUBLE_EQ(a.slots.median, b.slots.median);
  EXPECT_DOUBLE_EQ(a.energy_per_station.mean, b.energy_per_station.mean);
  EXPECT_DOUBLE_EQ(a.jams.mean, b.jams.mean);
}

TEST(CohortEngine, LockstepStrongCdStaysCompressed) {
  // Strong-CD uniform protocols stay in lockstep until the deciding
  // Single splits off the leader: at most 2 cohorts ever exist.
  auto adv = make_adversary(AdversarySpec{}, Rng(3).child(1));
  CohortEngine eng(lesk_station(), 1 << 12, std::move(adv), Rng(3).child(2),
                   {CdMode::kStrong, StopRule::kAllDone, 100000});
  const auto out = eng.run();
  EXPECT_TRUE(out.elected);
  EXPECT_TRUE(out.unique_leader);
  EXPECT_LE(eng.peak_cohorts(), 2u);
}

TEST(CohortEngine, WeakCdNotificationKeepsFewCohorts) {
  // Notification's state machine induces a handful of roles (leader,
  // second-loopers, confirmers); compression must not degrade toward
  // one-cohort-per-station.
  auto adv = make_adversary(AdversarySpec{}, Rng(5).child(1));
  CohortEngine eng(make_lewk_station(0.5), 256, std::move(adv),
                   Rng(5).child(2), {CdMode::kWeak, StopRule::kAllDone, 1 << 20});
  const auto out = eng.run();
  EXPECT_TRUE(out.elected);
  EXPECT_LE(eng.peak_cohorts(), 8u);
}

TEST(CohortEngine, RejectsNonCompressibleStation) {
  // A protocol without clone_station() support must fail fast at
  // construction, not at the first divergence.
  class OpaqueStation final : public StationProtocol {
   public:
    [[nodiscard]] double transmit_probability(Slot) override { return 0.5; }
    void feedback(Slot, bool, Observation) override {}
    [[nodiscard]] bool done() const override { return false; }
    [[nodiscard]] bool is_leader() const override { return false; }
    [[nodiscard]] std::string name() const override { return "opaque"; }
  };
  AdversarySpec spec;
  spec.n = 4;
  auto adv = make_adversary(spec, Rng(9).child(1));
  EXPECT_THROW(CohortEngine(std::make_unique<OpaqueStation>(), 4,
                            std::move(adv), Rng(9).child(2),
                            {CdMode::kStrong, StopRule::kAllDone, 100}),
               ContractViolation);
}

// Stress for the hash-bucketed merge compaction: a protocol whose
// state records its own transmission history diverges on every mixed
// slot, storming the table into hundreds of single-station cohorts,
// then collapses to one shared state — the engine must merge them all
// back while conserving the station count (all_done proves the size
// sums survived every split and merge).
class SplitStormStation final : public StationProtocol {
 public:
  static constexpr Slot kStormSlots = 12;

  [[nodiscard]] double transmit_probability(Slot slot) override {
    if (done_) return 0.0;
    return slot < kStormSlots ? 0.5 : 0.0;
  }
  void feedback(Slot slot, bool transmitted, Observation) override {
    if (done_) return;
    if (slot + 1 < kStormSlots) {
      history_ = history_ * 2 + (transmitted ? 1 : 0);
    } else {
      // Collapse: every station forgets its history and terminates in
      // the same state, so all cohorts become mergeable at once.
      history_ = 0;
      done_ = true;
    }
  }
  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] bool is_leader() const override { return false; }
  [[nodiscard]] std::string name() const override { return "split_storm"; }
  [[nodiscard]] std::unique_ptr<StationProtocol> clone_station()
      const override {
    return std::make_unique<SplitStormStation>(*this);
  }
  [[nodiscard]] std::uint64_t state_hash() const override {
    return history_ * 2 + (done_ ? 1 : 0);
  }
  [[nodiscard]] bool state_equals(const StationProtocol& other) const override {
    const auto* o = dynamic_cast<const SplitStormStation*>(&other);
    return o != nullptr && history_ == o->history_ && done_ == o->done_;
  }

 private:
  std::uint64_t history_ = 0;
  bool done_ = false;
};

TEST(CohortEngineMerge, ManyCohortStormCollapsesBackToOne) {
  constexpr std::uint64_t kN = 256;
  AdversarySpec spec;
  spec.n = kN;
  std::size_t last_peak = 0;
  TrialOutcome last{};
  for (int repeat = 0; repeat < 2; ++repeat) {
    CohortEngine engine(std::make_unique<SplitStormStation>(), kN,
                        make_adversary(spec, Rng(51).child(1)),
                        Rng(51).child(2),
                        {CdMode::kStrong, StopRule::kAllDone, 1000});
    const TrialOutcome outcome = engine.run();
    // The storm must actually shatter the table: with 12 coin-flip
    // slots and 256 stations, far more than 64 simultaneous cohorts.
    EXPECT_GT(engine.peak_cohorts(), 64u);
    // ... and the collapse must merge every shard back together.
    EXPECT_EQ(engine.num_cohorts(), 1u);
    // all_done requires done-size sums == n: conservation through
    // every split and bucketed merge.
    EXPECT_TRUE(outcome.all_done);
    EXPECT_EQ(outcome.slots, SplitStormStation::kStormSlots);
    if (repeat == 0) {
      last_peak = engine.peak_cohorts();
      last = outcome;
    } else {
      // Determinism: the bucketed compaction is order-stable.
      EXPECT_EQ(engine.peak_cohorts(), last_peak);
      EXPECT_EQ(outcome.transmissions, last.transmissions);
      EXPECT_EQ(outcome.collisions, last.collisions);
      EXPECT_EQ(outcome.nulls, last.nulls);
    }
  }
}

}  // namespace
}  // namespace jamelect
