#include "analysis/slot_taxonomy.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <cmath>

#include "protocols/lesk.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/aggregate.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

SlotRecord make_rec(ChannelState state, double u, bool jammed = false) {
  SlotRecord r;
  r.state = state;
  r.estimate = u;
  r.jammed = jammed;
  return r;
}

TEST(Taxonomy, ClassifiesByDefinition) {
  // n = 1024 (u0 = 10), eps = 0.5 -> a = 16:
  //   low threshold  u0 - log2(2 ln 16) = 10 - log2(5.545) ~ 7.53
  //   high threshold u0 + 0.5 log2 16   = 12
  const double u0 = 10.0, a = 16.0;
  EXPECT_EQ(classify_slot_record(make_rec(ChannelState::kNull, 7.0), u0, a),
            SlotClass::kIrregularSilence);
  EXPECT_EQ(classify_slot_record(make_rec(ChannelState::kNull, 13.5), u0, a),
            SlotClass::kCorrectingSilence);
  EXPECT_EQ(classify_slot_record(make_rec(ChannelState::kNull, 10.0), u0, a),
            SlotClass::kRegular);
  EXPECT_EQ(
      classify_slot_record(make_rec(ChannelState::kCollision, 12.5), u0, a),
      SlotClass::kIrregularCollision);
  EXPECT_EQ(
      classify_slot_record(make_rec(ChannelState::kCollision, 7.0), u0, a),
      SlotClass::kCorrectingCollision);
  EXPECT_EQ(
      classify_slot_record(make_rec(ChannelState::kCollision, 10.0), u0, a),
      SlotClass::kRegular);
}

TEST(Taxonomy, JammedAndSingleDominate) {
  const double u0 = 10.0, a = 16.0;
  EXPECT_EQ(
      classify_slot_record(make_rec(ChannelState::kCollision, 13.0, true), u0, a),
      SlotClass::kJammed);
  EXPECT_EQ(classify_slot_record(make_rec(ChannelState::kSingle, 10.0), u0, a),
            SlotClass::kSingle);
}

TEST(Taxonomy, UnknownWhenNoEstimate) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(classify_slot_record(make_rec(ChannelState::kNull, nan), 10, 16),
            SlotClass::kUnknown);
}

TEST(Taxonomy, BoundaryValuesAreInclusive) {
  const double u0 = 10.0, a = 16.0;
  const double low = u0 - std::log2(2.0 * std::log(a));
  const double high = u0 + 0.5 * std::log2(a);
  EXPECT_EQ(classify_slot_record(make_rec(ChannelState::kNull, low), u0, a),
            SlotClass::kIrregularSilence);
  EXPECT_EQ(
      classify_slot_record(make_rec(ChannelState::kCollision, high), u0, a),
      SlotClass::kIrregularCollision);
  EXPECT_EQ(
      classify_slot_record(make_rec(ChannelState::kNull, high + 1.0), u0, a),
      SlotClass::kCorrectingSilence);
}

TEST(Taxonomy, RejectsSmallA) {
  EXPECT_THROW(
      (void)classify_slot_record(make_rec(ChannelState::kNull, 1.0), 10, 4.0),
      ContractViolation);
}

// --- behaviour on real traces (Lemmas 2.2, 2.3, 2.5) ---

struct TraceRun {
  TaxonomyCounts counts;
  std::int64_t slots;
};

TraceRun run_lesk_taxonomy(std::uint64_t n, double eps,
                           const std::string& policy, std::uint64_t seed) {
  Lesk lesk(eps);
  AdversarySpec spec;
  spec.policy = policy;
  spec.T = 64;
  spec.eps = eps;
  spec.n = n;
  Rng rng(seed);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  Trace trace;
  const auto out = run_aggregate(lesk, *adv, {n, 1 << 21}, sim, &trace);
  EXPECT_TRUE(out.elected);
  return {classify_trace(trace, n, eps), out.slots};
}

TEST(TaxonomyBehaviour, PartitionIsExhaustive) {
  const auto run = run_lesk_taxonomy(1024, 0.5, "saturating", 71);
  EXPECT_EQ(run.counts.total(), run.slots);
  EXPECT_EQ(run.counts.unknown, 0);
  EXPECT_EQ(run.counts.single, 1);
}

TEST(TaxonomyBehaviour, IrregularSlotsAreRareLemma22) {
  // Aggregate over seeds; Lemma 2.2 bounds the per-slot rates by 1/a^2
  // and 1/a. Measured rates should respect ~those ceilings.
  std::int64_t is = 0, ic = 0, total = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto run = run_lesk_taxonomy(1024, 0.5, "saturating", 100 + seed);
    is += run.counts.irregular_silence;
    ic += run.counts.irregular_collision;
    total += run.slots;
  }
  const double a = 16.0;
  EXPECT_LT(static_cast<double>(is) / static_cast<double>(total),
            1.5 / (a * a) + 0.01);
  EXPECT_LT(static_cast<double>(ic) / static_cast<double>(total),
            1.5 / a + 0.02);
}

TEST(TaxonomyBehaviour, CounterRelationsLemma23) {
  for (const char* policy : {"none", "saturating", "bernoulli"}) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const auto run = run_lesk_taxonomy(512, 0.5, policy, 200 + seed);
      const auto bounds = lemma23_bounds(run.counts, 512, 0.5);
      EXPECT_TRUE(bounds.holds())
          << policy << " seed=" << seed << " CS=" << bounds.cs_measured
          << "<=" << bounds.cs_bound << " CC=" << bounds.cc_measured
          << "<=" << bounds.cc_bound;
    }
  }
}

TEST(TaxonomyBehaviour, StartupRampIsCorrectingCollisions) {
  // Without an adversary a clean run is dominated by the startup ramp:
  // u climbs from 0 to ~u0 in steps of 1/a, and every climb slot below
  // u0 - log2(2 ln a) is a correcting collision. Lemma 2.3 p.5 budgets
  // exactly this with its a*u0 term.
  const auto run = run_lesk_taxonomy(1024, 0.5, "none", 303);
  const double a = 16.0;
  const double u0 = 10.0;
  EXPECT_GT(run.counts.correcting_collision, run.counts.total() / 3);
  EXPECT_LE(static_cast<double>(run.counts.correcting_collision),
            a * u0 + a);  // the lemma's budget
  EXPECT_GT(run.counts.regular, 0);
  // And the post-ramp phase finishes fast: total within ~a*u0 + slack.
  EXPECT_LT(static_cast<double>(run.counts.total()), 4.0 * a * u0);
}

}  // namespace
}  // namespace jamelect
