#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace jamelect {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleIteration) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DeterministicResultIndependentOfThreads) {
  const auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(1000);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  EXPECT_DOUBLE_EQ(compute(1), compute(7));
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("bang");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SizeReflectsConstruction) {
  EXPECT_EQ(ThreadPool(3).size(), 3u);
  EXPECT_GE(ThreadPool(0).size(), 1u);  // hardware default
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
}

}  // namespace
}  // namespace jamelect
