#include "support/histogram.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

namespace jamelect {
namespace {

TEST(Histogram, BasicCounts) {
  Histogram h;
  h.add(3);
  h.add(3);
  h.add(5, 4);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(5), 4u);
  EXPECT_EQ(h.count(7), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(3), 2.0 / 6.0);
}

TEST(Histogram, ZeroWeightIgnored) {
  Histogram h;
  h.add(1, 0);
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(Histogram, MinMaxMean) {
  Histogram h;
  h.add(-2, 1);
  h.add(10, 3);
  EXPECT_EQ(h.min_value(), -2);
  EXPECT_EQ(h.max_value(), 10);
  EXPECT_DOUBLE_EQ(h.mean(), (-2.0 + 30.0) / 4.0);
}

TEST(Histogram, EmptyContractChecks) {
  Histogram h;
  EXPECT_THROW((void)h.min_value(), ContractViolation);
  EXPECT_THROW((void)h.mean(), ContractViolation);
  EXPECT_THROW((void)h.quantile(0.5), ContractViolation);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (std::int64_t v = 1; v <= 10; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.1), 1);
  EXPECT_EQ(h.quantile(0.5), 5);
  EXPECT_EQ(h.quantile(1.0), 10);
  EXPECT_THROW((void)h.quantile(0.0), ContractViolation);
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.add(1, 2);
  b.add(1, 3);
  b.add(2, 1);
  a.merge(b);
  EXPECT_EQ(a.count(1), 5u);
  EXPECT_EQ(a.count(2), 1u);
  EXPECT_EQ(a.total(), 6u);
}

TEST(Histogram, AsciiRendersBars) {
  Histogram h;
  h.add(0, 2);
  h.add(1, 4);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find("##########"), std::string::npos);  // the peak
  EXPECT_NE(art.find("#####"), std::string::npos);       // half-height bar
  EXPECT_EQ(Histogram{}.ascii(), "(empty)\n");
}

}  // namespace
}  // namespace jamelect
