#include "support/stats.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace jamelect {
namespace {

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, RequiresSamples) {
  OnlineStats s;
  EXPECT_THROW((void)s.mean(), ContractViolation);
  s.add(1.0);
  EXPECT_NO_THROW((void)s.mean());
  EXPECT_THROW((void)s.variance(), ContractViolation);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(1);
  OnlineStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform() * 10;
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0 / 3.0), 2.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> v{42};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.3), 42.0);
}

TEST(Summarize, FullSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(static_cast<double>(i));
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.mean, 51.0);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
  EXPECT_DOUBLE_EQ(s.p25, 26.0);
  EXPECT_DOUBLE_EQ(s.p75, 76.0);
  EXPECT_DOUBLE_EQ(s.p95, 96.0);
  EXPECT_GT(s.ci95_halfwidth, 0.0);
}

TEST(Summarize, EmptyAndInt64) {
  const Summary e = summarize(std::span<const double>{});
  EXPECT_EQ(e.count, 0u);
  const std::vector<std::int64_t> v{5, 1, 3};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Wilson, CentersOnRate) {
  const auto iv = wilson_interval(50, 100);
  EXPECT_DOUBLE_EQ(iv.rate, 0.5);
  EXPECT_LT(iv.lower, 0.5);
  EXPECT_GT(iv.upper, 0.5);
  EXPECT_NEAR(iv.upper - iv.lower, 2 * 1.96 * 0.05, 0.02);
}

TEST(Wilson, RobustAtExtremes) {
  const auto zero = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(zero.rate, 0.0);
  EXPECT_NEAR(zero.lower, 0.0, 1e-15);
  EXPECT_GT(zero.upper, 0.0);
  EXPECT_LT(zero.upper, 0.05);
  const auto all = wilson_interval(100, 100);
  EXPECT_GT(all.upper, 0.999);
  EXPECT_LE(all.upper, 1.0);
  EXPECT_GT(all.lower, 0.95);
}

TEST(Wilson, RejectsBadInput) {
  EXPECT_THROW((void)wilson_interval(2, 1), ContractViolation);
  EXPECT_THROW((void)wilson_interval(0, 0), ContractViolation);
}

TEST(FitLine, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x
  const auto f = fit_line(x, y);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineRecovered) {
  Rng rng(9);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xi = static_cast<double>(i);
    x.push_back(xi);
    y.push_back(4.0 + 0.5 * xi + (rng.uniform() - 0.5));
  }
  const auto f = fit_line(x, y);
  EXPECT_NEAR(f.slope, 0.5, 0.01);
  EXPECT_GT(f.r2, 0.99);
}

TEST(FitLine, RejectsDegenerate) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)fit_line(one, one), ContractViolation);
  const std::vector<double> same{2.0, 2.0};
  EXPECT_THROW((void)fit_line(same, same), ContractViolation);  // vertical
}


TEST(SummarizeWeighted, MatchesExpandedSummarize) {
  // value -> count compression must reproduce summarize() on the
  // expanded multiset: identical type-7 quantiles, matching moments.
  Rng rng(31);
  std::vector<std::pair<double, std::uint64_t>> vc;
  std::vector<double> expanded;
  for (int v = 0; v < 40; ++v) {
    const std::uint64_t c = 1 + rng.below(17);
    vc.emplace_back(static_cast<double>(v * 3), c);
    for (std::uint64_t i = 0; i < c; ++i) {
      expanded.push_back(static_cast<double>(v * 3));
    }
  }
  // Shuffle pair order: the result must be order-independent.
  std::swap(vc[0], vc[17]);
  std::swap(vc[3], vc[31]);
  const Summary w = summarize_weighted(vc);
  const Summary e = summarize(std::span<const double>(expanded));
  EXPECT_EQ(w.count, e.count);
  EXPECT_DOUBLE_EQ(w.min, e.min);
  EXPECT_DOUBLE_EQ(w.max, e.max);
  EXPECT_DOUBLE_EQ(w.p25, e.p25);
  EXPECT_DOUBLE_EQ(w.median, e.median);
  EXPECT_DOUBLE_EQ(w.p75, e.p75);
  EXPECT_DOUBLE_EQ(w.p95, e.p95);
  EXPECT_DOUBLE_EQ(w.p99, e.p99);
  EXPECT_NEAR(w.mean, e.mean, 1e-12 * (1.0 + std::abs(e.mean)));
  EXPECT_NEAR(w.stddev, e.stddev, 1e-9 * (1.0 + e.stddev));
}

TEST(SummarizeWeighted, IgnoresZeroCountsAndHandlesEmpty) {
  EXPECT_EQ(summarize_weighted({}).count, 0u);
  EXPECT_EQ(summarize_weighted({{5.0, 0}}).count, 0u);
  const Summary s = summarize_weighted({{2.0, 0}, {7.0, 3}});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

}  // namespace
}  // namespace jamelect
