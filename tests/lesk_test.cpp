#include "protocols/lesk.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <cmath>

#include "sim/adversary_spec.hpp"
#include "sim/aggregate.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

TEST(Lesk, InitialState) {
  Lesk lesk(0.5);
  EXPECT_DOUBLE_EQ(lesk.u(), 0.0);
  EXPECT_DOUBLE_EQ(lesk.a(), 16.0);
  EXPECT_DOUBLE_EQ(lesk.transmit_probability(), 1.0);  // 2^-0
  EXPECT_FALSE(lesk.elected());
}

TEST(Lesk, RejectsBadEps) {
  EXPECT_THROW(Lesk lesk(0.0), ContractViolation);
  EXPECT_THROW(Lesk lesk(1.5), ContractViolation);
  EXPECT_THROW(Lesk lesk(-0.2), ContractViolation);
  EXPECT_NO_THROW(Lesk lesk(1.0));
}

TEST(Lesk, AsymmetricUpdates) {
  Lesk lesk(0.5);  // a = 16, increment 1/16
  lesk.observe(ChannelState::kCollision);
  EXPECT_DOUBLE_EQ(lesk.u(), 1.0 / 16.0);
  lesk.observe(ChannelState::kCollision);
  EXPECT_DOUBLE_EQ(lesk.u(), 2.0 / 16.0);
  lesk.observe(ChannelState::kNull);
  EXPECT_DOUBLE_EQ(lesk.u(), 0.0);  // floored at 0, not negative
}

TEST(Lesk, OneNullNeutralizesAOverCollisions) {
  // The paper's design intuition: a Null (-1) cancels a = 8/eps
  // Collisions (+1/a each).
  Lesk lesk(0.25);  // a = 32
  for (int i = 0; i < 32; ++i) lesk.observe(ChannelState::kCollision);
  EXPECT_NEAR(lesk.u(), 1.0, 1e-12);
  lesk.observe(ChannelState::kNull);
  EXPECT_NEAR(lesk.u(), 0.0, 1e-12);
}

TEST(Lesk, SingleTerminatesAndFreezes) {
  Lesk lesk(0.5);
  lesk.observe(ChannelState::kCollision);
  lesk.observe(ChannelState::kSingle);
  EXPECT_TRUE(lesk.elected());
  const double u = lesk.u();
  lesk.observe(ChannelState::kCollision);  // post-election input ignored
  lesk.observe(ChannelState::kNull);
  EXPECT_DOUBLE_EQ(lesk.u(), u);
  EXPECT_TRUE(lesk.elected());
}

TEST(Lesk, TransmitProbabilityTracksU) {
  Lesk lesk(LeskParams{0.5, 3.0});
  EXPECT_DOUBLE_EQ(lesk.transmit_probability(), 0.125);
  EXPECT_DOUBLE_EQ(lesk.estimate(), 3.0);
}

TEST(Lesk, CloneIsIndependent) {
  Lesk lesk(0.5);
  lesk.observe(ChannelState::kCollision);
  auto copy = lesk.clone();
  copy->observe(ChannelState::kNull);
  EXPECT_DOUBLE_EQ(lesk.u(), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(copy->estimate(), 0.0);
}

// --- behavioural tests through the aggregate engine ---

TrialOutcome run_lesk(std::uint64_t n, double eps, const std::string& policy,
                      std::int64_t T, std::uint64_t seed,
                      std::int64_t max_slots) {
  Lesk lesk(eps);
  AdversarySpec spec;
  spec.policy = policy;
  spec.T = T;
  spec.eps = eps;
  spec.n = n;
  Rng rng(seed);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  return run_aggregate(lesk, *adv, {n, max_slots}, sim);
}

TEST(LeskBehaviour, ElectsImmediatelyWithOneStation) {
  const auto out = run_lesk(1, 0.5, "none", 16, 42, 100);
  EXPECT_TRUE(out.elected);
  EXPECT_EQ(out.slots, 1);  // u = 0 -> p = 1 -> lone Single
}

TEST(LeskBehaviour, ElectsWithoutAdversary) {
  for (std::uint64_t n : {2ULL, 10ULL, 1000ULL, 1ULL << 14}) {
    const auto out = run_lesk(n, 0.5, "none", 16, 1000 + n, 200000);
    EXPECT_TRUE(out.elected) << "n=" << n;
    EXPECT_EQ(out.singles, 1) << "n=" << n;
  }
}

TEST(LeskBehaviour, ElectsUnderSaturatingAdversary) {
  for (std::uint64_t n : {4ULL, 256ULL, 4096ULL}) {
    const auto out = run_lesk(n, 0.5, "saturating", 64, 7 + n, 500000);
    EXPECT_TRUE(out.elected) << "n=" << n;
    EXPECT_GT(out.jams, 0) << "n=" << n;
  }
}

TEST(LeskBehaviour, ElectsUnderSingleDenialAdversary) {
  const auto out = run_lesk(1024, 0.5, "single_denial", 64, 99, 500000);
  EXPECT_TRUE(out.elected);
}

TEST(LeskBehaviour, SlowsDownUnderJamming) {
  // With a small T the cost of eps = 1/2 jamming is mild (the startup
  // ramp is Collision-dominated either way), so use a large T: the
  // adversary's initial burst of ~(1-eps)T jams pushes u far above
  // log2(n) and demonstrably delays the election.
  double clean = 0, jammed = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    clean += static_cast<double>(
        run_lesk(1024, 0.5, "none", 2048, 100 + s, 500000).slots);
    jammed += static_cast<double>(
        run_lesk(1024, 0.5, "saturating", 2048, 200 + s, 500000).slots);
  }
  EXPECT_GT(jammed, clean + 5 * 500.0);
}

TEST(LeskBehaviour, SmallerEpsCostsMoreSlots) {
  double fast = 0, slow = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    fast += static_cast<double>(
        run_lesk(256, 0.5, "saturating", 64, 300 + s, 4000000).slots);
    slow += static_cast<double>(
        run_lesk(256, 0.125, "saturating", 64, 400 + s, 4000000).slots);
  }
  EXPECT_GT(slow, fast);
}

// Uniformity (paper §1.1): the transmit probability is a deterministic
// function of the observation history — two instances fed the same
// history stay identical.
TEST(Lesk, DeterministicGivenHistory) {
  Lesk a(0.3), b(0.3);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double r = rng.uniform();
    const ChannelState s = r < 0.4   ? ChannelState::kNull
                           : r < 0.9 ? ChannelState::kCollision
                                     : ChannelState::kCollision;
    a.observe(s);
    b.observe(s);
    ASSERT_DOUBLE_EQ(a.transmit_probability(), b.transmit_probability());
  }
}

}  // namespace
}  // namespace jamelect
