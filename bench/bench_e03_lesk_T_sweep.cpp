// E3 — the T-dominated regime of Theorem 2.6: for T beyond
// log n/(eps^3 log(1/eps)) the runtime is Theta(T). Sweep T at constant
// eps under saturating and periodic adversaries; `slots_per_T` should
// flatten to a constant once T dominates.
#include "bench_common.hpp"

namespace jamelect::bench {
namespace {

void E03_LeskTSweep(benchmark::State& state) {
  const auto T = static_cast<std::int64_t>(1) << state.range(0);
  const int policy = static_cast<int>(state.range(1));
  const double eps = 0.5;
  const std::uint64_t n = 1024;
  AdversarySpec adv = adversary(policy == 0 ? "saturating" : "periodic", T, eps);
  const auto cfg = mc(0xE03, 1 << 24);

  McResult res;
  for (auto _ : state) {
    res = run_aggregate_mc(lesk_factory(eps), adv, n, cfg);
  }
  report(state, res);
  state.counters["T"] = static_cast<double>(T);
  state.counters["slots_per_T"] = res.slots.mean / static_cast<double>(T);
  state.counters["lower_bound"] = lower_bound_slots(n, eps, T);
  state.SetLabel(policy == 0 ? "adv=saturating" : "adv=periodic");
}

BENCHMARK(E03_LeskTSweep)
    ->ArgsProduct({{6, 8, 10, 12, 14, 16}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
