// E5 — Theorem 2.9 case 1: LESU with UNKNOWN eps pays only a
// log log(1/eps)-ish factor over LESK that knows eps. Sweep eps at
// fixed n under the saturating adversary; `overhead` = LESU/LESK mean
// slots should grow slowly (double-logarithmically) as eps shrinks.
#include "bench_common.hpp"

namespace jamelect::bench {
namespace {

void E05_LesuUnknownEps(benchmark::State& state) {
  const double eps = static_cast<double>(state.range(0)) / 1000.0;
  const std::uint64_t n = 1024;
  AdversarySpec adv = adversary("saturating", 64, eps);
  const auto cfg = mc(0xE05, 1 << 24, 10);

  McResult lesu, lesk;
  for (auto _ : state) {
    lesu = run_aggregate_mc(lesu_factory(), adv, n, cfg);
    lesk = run_aggregate_mc(lesk_factory(eps), adv, n, cfg);
  }
  state.counters["eps_milli"] = static_cast<double>(state.range(0));
  state.counters["lesu_slots"] = lesu.slots.mean;
  state.counters["lesk_slots"] = lesk.slots.mean;
  state.counters["overhead"] = lesu.slots.mean / lesk.slots.mean;
  state.counters["lesu_success"] = lesu.success.rate;
  state.counters["theory_shape"] =
      lesu_time_bound(n, eps, 64) /
      std::max(1.0, lower_bound_slots(n, eps, 64));
}

BENCHMARK(E05_LesuUnknownEps)
    ->Arg(500)->Arg(354)->Arg(250)->Arg(177)->Arg(125)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
