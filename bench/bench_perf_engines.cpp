// Engine performance (wall-clock, not slots): how fast does each
// simulation engine chew through slots? This is the one bench where
// google-benchmark's timing columns are the point.
//
//   * aggregate: O(1)/slot regardless of n — the reason the E-series
//     can sweep n = 2^20;
//   * per-station: O(n)/slot — the exact reference engine;
//   * hybrid: O(1)/slot Notification simulation;
//   * cohort: O(#cohorts)/slot — per-station semantics at near-
//     aggregate speed for protocols that stay (mostly) in lockstep.
//
// Protocol under measurement: SizeApproximation (it never elects, so a
// run processes exactly the requested number of slots).
#include "bench_common.hpp"

#include <memory>
#include <ostream>
#include <streambuf>

#include "baselines/willard.hpp"
#include "extensions/size_approximation.hpp"
#include "obs/events.hpp"
#include "obs/observer.hpp"
#include "protocols/uniform_station.hpp"
#include "sim/aggregate.hpp"
#include "sim/cohort.hpp"
#include "sim/engine.hpp"
#include "sim/hybrid.hpp"

namespace jamelect::bench {
namespace {

constexpr std::int64_t kSlots = 1 << 15;

void Perf_AggregateEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  AdversarySpec spec = adversary("saturating", 64, 0.5);
  spec.n = n;
  std::int64_t slots = 0;
  for (auto _ : state) {
    SizeApproximation proto({0.5, kSlots});
    Rng rng(11);
    auto adv = make_adversary(spec, rng.child(1));
    Rng sim = rng.child(2);
    const auto out = run_aggregate(proto, *adv, {n, kSlots}, sim);
    slots += out.slots;
    benchmark::DoNotOptimize(out.slots);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
}

void Perf_PerStationEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  AdversarySpec spec = adversary("saturating", 64, 0.5);
  spec.n = n;
  constexpr std::int64_t kSmall = 1 << 11;
  std::int64_t slots = 0;
  for (auto _ : state) {
    std::vector<StationProtocolPtr> stations;
    for (std::uint64_t i = 0; i < n; ++i) {
      stations.push_back(std::make_unique<UniformStationAdapter>(
          std::make_unique<SizeApproximation>(
              SizeApproximationParams{0.5, kSmall})));
    }
    Rng rng(13);
    SlotEngine engine(std::move(stations), make_adversary(spec, rng.child(1)),
                      rng.child(2),
                      {CdMode::kStrong, StopRule::kAllDone, kSmall});
    const auto out = engine.run();
    slots += out.slots;
    benchmark::DoNotOptimize(out.slots);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
}

void Perf_CohortEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  AdversarySpec spec = adversary("saturating", 64, 0.5);
  spec.n = n;
  std::int64_t slots = 0;
  for (auto _ : state) {
    Rng rng(13);
    CohortEngine engine(
        std::make_unique<UniformStationAdapter>(
            std::make_unique<SizeApproximation>(
                SizeApproximationParams{0.5, kSlots})),
        n, make_adversary(spec, rng.child(1)), rng.child(2),
        {CdMode::kStrong, StopRule::kAllDone, kSlots});
    const auto out = engine.run();
    slots += out.slots;
    benchmark::DoNotOptimize(out.slots);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
}

// Same workload as Perf_PerStationEngine (kSmall slots) so the
// cohort-vs-exact speedup at per-station-feasible sizes reads directly
// off the items/sec column.
void Perf_CohortEngineSmall(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  AdversarySpec spec = adversary("saturating", 64, 0.5);
  spec.n = n;
  constexpr std::int64_t kSmall = 1 << 11;
  std::int64_t slots = 0;
  for (auto _ : state) {
    Rng rng(13);
    CohortEngine engine(
        std::make_unique<UniformStationAdapter>(
            std::make_unique<SizeApproximation>(
                SizeApproximationParams{0.5, kSmall})),
        n, make_adversary(spec, rng.child(1)), rng.child(2),
        {CdMode::kStrong, StopRule::kAllDone, kSmall});
    const auto out = engine.run();
    slots += out.slots;
    benchmark::DoNotOptimize(out.slots);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
}

// Perf_CohortEngine with an NDJSON event stream attached at the default
// sampling period. The delta against Perf_CohortEngine is the full
// telemetry cost (event construction + serialization); the acceptance
// budget is < 5%. Output goes to a discarding streambuf so the bench
// measures telemetry, not disk.
void Perf_CohortEngineTelemetry(benchmark::State& state) {
  struct NullBuf final : std::streambuf {
    int overflow(int c) override { return traits_type::not_eof(c); }
    std::streamsize xsputn(const char*, std::streamsize n) override {
      return n;
    }
  };
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  AdversarySpec spec = adversary("saturating", 64, 0.5);
  spec.n = n;
  NullBuf buf;
  std::ostream devnull(&buf);
  obs::NdjsonSink sink(devnull);
  obs::RunObserver observer(sink);
  std::int64_t slots = 0;
  for (auto _ : state) {
    Rng rng(13);
    EngineConfig config{CdMode::kStrong, StopRule::kAllDone, kSlots};
    config.observer = &observer;
    CohortEngine engine(
        std::make_unique<UniformStationAdapter>(
            std::make_unique<SizeApproximation>(
                SizeApproximationParams{0.5, kSlots})),
        n, make_adversary(spec, rng.child(1)), rng.child(2), config);
    const auto out = engine.run();
    slots += out.slots;
    benchmark::DoNotOptimize(out.slots);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
}

// Batched kernel Monte-Carlo (McConfig::batch) against the sequential
// aggregate MC it replaces. Both run the *identical* trials — the batch
// engine is bit-identical per trial — so items/sec divides into a true
// speedup. LESK under a saturating adversary is the paper's headline
// workload; parallel is off so the ratio is single-core engine speed,
// not thread-pool scheduling.
[[nodiscard]] McResult lesk_mc(std::uint64_t n, std::size_t batch,
                               std::size_t n_trials,
                               BatchLaneMode lanes = BatchLaneMode::kAuto,
                               bool parallel = false,
                               RngBackend rng = RngBackend::kXoshiro) {
  AdversarySpec spec = adversary("saturating", 64, 0.5);
  McConfig config = mc(/*seed=*/23, /*max_slots=*/kSlots, n_trials);
  config.parallel = parallel;
  config.batch = batch;
  config.batch_lanes = lanes;
  config.rng_backend = rng;
  return run_aggregate_mc(lesk_factory(0.5), spec, n, config);
}

[[nodiscard]] std::int64_t total_slots(const McResult& res) {
  return static_cast<std::int64_t>(
      res.slots.mean * static_cast<double>(res.slots.count) + 0.5);
}

// Pinned to the scalar lane path so the series stays comparable with
// the pre-wide baseline (kAuto would silently go SIMD-wide here).
void Perf_BatchEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res = lesk_mc(n, /*batch=*/64, /*n_trials=*/64,
                                 BatchLaneMode::kScalarLanes);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
  state.counters["batch"] = 64;
}

// Identical workload with the SIMD-wide lane path: items/sec over
// Perf_BatchEngine is the wide speedup (the backend — avx2/scalar4 —
// is recorded in the benchmark context as jamelect_wide_isa).
void Perf_WideBatchEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res =
        lesk_mc(n, /*batch=*/64, /*n_trials=*/64, BatchLaneMode::kWide);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
  state.counters["batch"] = 64;
}

// Multi-core wide-batch orchestration: the Perf_WideBatchEngine
// workload scaled up (more trials, so chunks outnumber workers) and
// fanned out over the thread pool. items/sec over a single-threaded
// run of this same case is the parallel speedup; the fan-out width is
// stamped into the JSON context as jamelect_threads (and the per-case
// `threads` counter). Per-trial outcomes are bit-identical at every
// width — tests/parallel_mc_test.cpp holds that line.
void Perf_ParallelWideBatchEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res = lesk_mc(n, /*batch=*/64, /*n_trials=*/512,
                                 BatchLaneMode::kWide, /*parallel=*/true);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
  state.counters["batch"] = 64;
  state.counters["threads"] =
      static_cast<double>(global_pool().size() + 1);
}

// The wide-batch workload on the counter-keyed AES backend
// (rng_backend=aes_ctr; implementation — aesni/soft — is stamped as
// jamelect_rng_backend_aes). Different draws than the xoshiro series,
// same per-slot work shape; items/sec against Perf_WideBatchEngine is
// the cipher cost of O(1)-addressable streams.
void Perf_AesCtrWideBatchEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res =
        lesk_mc(n, /*batch=*/64, /*n_trials=*/64, BatchLaneMode::kWide,
                /*parallel=*/false, RngBackend::kAesCtr);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
  state.counters["batch"] = 64;
}

// Adaptive-adversary Monte-Carlo: collision_forcer keeps per-lane state
// (budget recurrence, tracked public estimate, jam desires), which used
// to disqualify the wide path entirely — the whole sweep ran
// sequentially. The lane-variant adversary bank (sim/lane_adversary.hpp)
// now runs it wide; the three benches below are the sequential
// baseline, the scalar-lane batch path, and the wide path on the same
// trials (bit-identical per trial, so items/sec divides into a true
// speedup).
[[nodiscard]] McResult adaptive_mc(std::uint64_t n, std::size_t batch,
                                   std::size_t n_trials,
                                   BatchLaneMode lanes) {
  AdversarySpec spec = adversary("collision_forcer", 64, 0.5);
  spec.collision_threshold = 0.6;
  McConfig config = mc(/*seed=*/29, /*max_slots=*/kSlots, n_trials);
  config.parallel = false;
  config.batch = batch;
  config.batch_lanes = lanes;
  return run_aggregate_mc(lesk_factory(0.5), spec, n, config);
}

void Perf_AdaptiveSequentialMcBaseline(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res =
        adaptive_mc(n, /*batch=*/0, /*n_trials=*/64, BatchLaneMode::kAuto);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
}

void Perf_AdaptiveScalarBatchEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res = adaptive_mc(n, /*batch=*/64, /*n_trials=*/64,
                                     BatchLaneMode::kScalarLanes);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
  state.counters["batch"] = 64;
}

void Perf_AdaptiveWideBatchEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res = adaptive_mc(n, /*batch=*/64, /*n_trials=*/64,
                                     BatchLaneMode::kWide);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
  state.counters["batch"] = 64;
}

// The kernelized bench_e08 workload: a baseline protocol (Willard, via
// its POD kernel twin in baselines/baseline_kernels.hpp) batched
// through the generic wide path, against the sequential virtual-class
// run of the same trials. Saturating jamming keeps Willard from
// electing, so every trial processes the full slot budget.
[[nodiscard]] McResult willard_mc(std::uint64_t n, std::size_t batch,
                                  std::size_t n_trials) {
  AdversarySpec spec = adversary("saturating", 64, 0.5);
  McConfig config = mc(/*seed=*/31, /*max_slots=*/kSlots, n_trials);
  config.parallel = false;
  config.batch = batch;
  return run_aggregate_mc([] { return std::make_unique<Willard>(); }, spec, n,
                          config);
}

void Perf_BaselineSequentialMcBaseline(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res = willard_mc(n, /*batch=*/0, /*n_trials=*/64);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
}

void Perf_BaselineKernelBatchEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res = willard_mc(n, /*batch=*/64, /*n_trials=*/64);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
  state.counters["batch"] = 64;
}

void Perf_SequentialMcBaseline(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res = lesk_mc(n, /*batch=*/0, /*n_trials=*/64);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
}

// Cohort-lane batched Monte-Carlo (sim/cohort_batch.hpp) against the
// sequential cohort MC it replaces. Identical trials bit for bit —
// same adapter prototype, same per-trial streams — so items/sec
// divides into a true speedup. The cohort engine is the one that
// keeps per-station semantics at scale, and sequentially it pays a
// fresh binomial setup (log1p/exp or full BTPE constants) plus a
// virtual transmit_probability per cohort per slot; the lanes amortize
// that through the memoized plan cache and grouped wide uniforms.
[[nodiscard]] McResult cohort_lesk_mc(std::uint64_t n, std::size_t batch,
                                      std::size_t n_trials) {
  AdversarySpec spec = adversary("saturating", 64, 0.5);
  spec.n = n;
  McConfig config = mc(/*seed=*/41, /*max_slots=*/kSlots, n_trials);
  config.parallel = false;
  config.batch = batch;
  return run_cohort_mc(
      [] {
        return std::make_unique<UniformStationAdapter>(
            std::make_unique<Lesk>(0.5));
      },
      spec, n, {CdMode::kStrong, StopRule::kFirstSingle, kSlots}, config);
}

void Perf_CohortSequentialMcBaseline(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res = cohort_lesk_mc(n, /*batch=*/0, /*n_trials=*/64);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
}

void Perf_CohortBatchEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res = cohort_lesk_mc(n, /*batch=*/64, /*n_trials=*/64);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
  state.counters["batch"] = 64;
}

// Same trials at a deliberately small lane count: the delta against
// Perf_CohortBatchEngine is how much of the win needs full-width
// chunks (plan-cache reuse already kicks in at 8 lanes; the wide-RNG
// group draws want the bigger chunk).
void Perf_CohortBatchEngineSmall(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  std::int64_t slots = 0;
  for (auto _ : state) {
    const McResult res = cohort_lesk_mc(n, /*batch=*/8, /*n_trials=*/64);
    slots += total_slots(res);
    benchmark::DoNotOptimize(res.successes);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
  state.counters["batch"] = 8;
}

void Perf_HybridEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  AdversarySpec spec = adversary("saturating", 64, 0.5);
  spec.n = n;
  std::int64_t slots = 0;
  for (auto _ : state) {
    Rng rng(17);
    auto adv = make_adversary(spec, rng.child(1));
    Rng sim = rng.child(2);
    // The inner protocol never elects, so Notification loops for the
    // whole budget.
    const auto out = run_hybrid_notification(
        [] {
          return std::make_unique<SizeApproximation>(
              SizeApproximationParams{0.5, kSlots});
        },
        *adv, {n, kSlots}, sim);
    slots += out.slots;
    benchmark::DoNotOptimize(out.slots);
  }
  state.SetItemsProcessed(slots);
  state.counters["n"] = static_cast<double>(n);
}

BENCHMARK(Perf_AggregateEngine)->Arg(4)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_PerStationEngine)->Arg(4)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_CohortEngine)->Arg(4)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_CohortEngineSmall)->Arg(4)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_CohortEngineTelemetry)->Arg(4)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_HybridEngine)->Arg(4)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_BatchEngine)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_WideBatchEngine)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_ParallelWideBatchEngine)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_AesCtrWideBatchEngine)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_SequentialMcBaseline)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_CohortSequentialMcBaseline)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_CohortBatchEngine)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_CohortBatchEngineSmall)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_AdaptiveSequentialMcBaseline)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_AdaptiveScalarBatchEngine)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_AdaptiveWideBatchEngine)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_BaselineSequentialMcBaseline)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);
BENCHMARK(Perf_BaselineKernelBatchEngine)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
