// E13 — energy (transmissions per station). The paper does not analyze
// energy but conjectures parity with [3] (§1.3); this bench measures
// mean per-station transmissions for LESK, LEWK and ARSS across n.
// LESK's expected energy is tiny: the per-slot probability is ~2^-u,
// so total transmissions are dominated by the startup ramp.
#include "bench_common.hpp"

#include "baselines/arss.hpp"

namespace jamelect::bench {
namespace {

constexpr std::int64_t kT = 64;
constexpr double kEps = 0.5;

void E13_LeskEnergy(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  AdversarySpec adv = adversary(jam ? "saturating" : "none", kT, kEps);
  const auto cfg = mc(0xE13, 1 << 22);
  McResult res;
  for (auto _ : state) res = run_aggregate_mc(lesk_factory(kEps), adv, n, cfg);
  report(state, res);
  state.counters["n"] = static_cast<double>(n);
  state.SetLabel(jam ? "jammed" : "clean");
}

void E13_LewkEnergy(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  AdversarySpec adv = adversary(jam ? "saturating" : "none", kT, kEps);
  const auto cfg = mc(0xE13, 1 << 23);
  McResult res;
  for (auto _ : state) res = run_hybrid_mc(lesk_factory(kEps), adv, n, cfg);
  report(state, res);
  state.counters["n"] = static_cast<double>(n);
  state.SetLabel(jam ? "jammed" : "clean");
}

void E13_ArssEnergy(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  AdversarySpec adv = adversary(jam ? "saturating" : "none", kT, kEps);
  McConfig cfg = mc(0xE13, 1 << 19, 5);
  const double gamma = arss_gamma(n, kT);
  McResult res;
  for (auto _ : state) {
    res = run_station_mc(
        [gamma](StationId) -> StationProtocolPtr {
          ArssParams params;
          params.gamma = gamma;
          return std::make_unique<ArssStation>(params);
        },
        adv, n, {CdMode::kStrong, StopRule::kAllDone, cfg.max_slots}, cfg);
  }
  report(state, res);
  state.counters["n"] = static_cast<double>(n);
  state.SetLabel(jam ? "jammed" : "clean");
}

BENCHMARK(E13_LeskEnergy)->ArgsProduct({{6, 10, 14, 18}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(E13_LewkEnergy)->ArgsProduct({{6, 10, 14}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(E13_ArssEnergy)->ArgsProduct({{6, 8, 10}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
