// E11 — the slot taxonomy behind Theorem 2.6's proof (Lemmas 2.2-2.5):
// classify real LESK traces into IS/IC/CS/CC/E/R and check the measured
// fractions against the per-slot ceilings (IS <= 1/a^2, IC <= 1/a) and
// the counter relations (CS <= (IC+E)/a, CC <= a*IS + a*u0).
#include "bench_common.hpp"

#include "analysis/slot_taxonomy.hpp"
#include "sim/aggregate.hpp"

namespace jamelect::bench {
namespace {

void E11_SlotTaxonomy(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int policy = static_cast<int>(state.range(1));
  const double eps = 0.5;
  // Index 6 = saturating with a huge T: its initial burst pushes u far
  // above u0, which is the only regime where IC/CS slots occur.
  const bool burst = policy == 6;
  const std::string policy_str = burst ? "saturating" : policy_name(policy);
  const std::int64_t T = burst ? 4096 : 64;
  const std::size_t kTrials = trials(20);

  TaxonomyCounts agg;
  bool relations_hold = true;
  for (auto _ : state) {
    const Rng base(0xE11);
    for (std::size_t k = 0; k < kTrials; ++k) {
      Lesk lesk(eps);
      AdversarySpec spec = adversary(policy_str, T, eps);
      spec.n = n;
      Rng rng = base.child(k);
      auto adv = make_adversary(spec, rng.child(1));
      Rng sim = rng.child(2);
      Trace trace;
      (void)run_aggregate(lesk, *adv, {n, 1 << 22}, sim, &trace);
      const auto counts = classify_trace(trace, n, eps);
      relations_hold =
          relations_hold && lemma23_bounds(counts, n, eps).holds();
      agg.regular += counts.regular;
      agg.irregular_silence += counts.irregular_silence;
      agg.irregular_collision += counts.irregular_collision;
      agg.correcting_silence += counts.correcting_silence;
      agg.correcting_collision += counts.correcting_collision;
      agg.jammed += counts.jammed;
      agg.single += counts.single;
    }
  }
  const double total = static_cast<double>(agg.total());
  const double a = 8.0 / eps;
  state.counters["n"] = static_cast<double>(n);
  state.counters["frac_regular"] = static_cast<double>(agg.regular) / total;
  state.counters["frac_IS"] = static_cast<double>(agg.irregular_silence) / total;
  state.counters["frac_IC"] = static_cast<double>(agg.irregular_collision) / total;
  state.counters["frac_CS"] = static_cast<double>(agg.correcting_silence) / total;
  state.counters["frac_CC"] = static_cast<double>(agg.correcting_collision) / total;
  state.counters["frac_E"] = static_cast<double>(agg.jammed) / total;
  state.counters["IS_ceiling"] = 1.0 / (a * a);
  state.counters["IC_ceiling"] = 1.0 / a;
  state.counters["lemma23_holds"] = relations_hold ? 1.0 : 0.0;
  state.SetLabel("adv=" + policy_str + (burst ? "_T4096" : ""));
}

BENCHMARK(E11_SlotTaxonomy)
    ->ArgsProduct({{8, 12, 16}, {0, 1, 3, 5, 6}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
