// E15 (extension experiments) — the §4 building-block applications:
//   * size approximation: accuracy of the LESK-walk estimator across n
//     and adversaries (|median-u − log2 n| should stay within a few
//     units; the budget needed is ~2*a*log2(n) slots);
//   * k-selection: slots for k distinct leaders; with warm start the
//     marginal cost per extra leader collapses to O(1) expected regular
//     slots (the ablation the k_selection header calls out).
#include "bench_common.hpp"

#include <limits>

#include "extensions/k_selection.hpp"
#include "extensions/size_approximation.hpp"
#include "sim/aggregate.hpp"

namespace jamelect::bench {
namespace {

// The two series in this binary measure different quantities, but the
// CSV reporter aborts unless every run carries the same counter set —
// each family pads the other's columns with NaN ("not applicable").
constexpr double kNotApplicable = std::numeric_limits<double>::quiet_NaN();

void E15_SizeApproximation(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  const double eps = 0.5;
  const double log2n = std::log2(static_cast<double>(n));
  const auto budget = static_cast<std::int64_t>(64.0 * (log2n + 8.0));
  const std::size_t kTrials = trials(20);

  double abs_err_sum = 0.0, worst = 0.0;
  for (auto _ : state) {
    const Rng base(0xE15);
    for (std::size_t k = 0; k < kTrials; ++k) {
      SizeApproximation approx({eps, budget});
      AdversarySpec spec = adversary(jam ? "saturating" : "none", 64, eps);
      spec.n = n;
      Rng rng = base.child(k);
      auto adv = make_adversary(spec, rng.child(1));
      Rng sim = rng.child(2);
      (void)run_aggregate(approx, *adv, {n, budget}, sim);
      const double err = std::abs(approx.estimate_log2n() - log2n);
      abs_err_sum += err;
      worst = std::max(worst, err);
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["budget_slots"] = static_cast<double>(budget);
  state.counters["mean_abs_err_log2"] = abs_err_sum / static_cast<double>(kTrials);
  state.counters["worst_abs_err_log2"] = worst;
  state.counters["k"] = kNotApplicable;
  state.counters["slots_mean"] = kNotApplicable;
  state.counters["first_round_mean"] = kNotApplicable;
  state.counters["later_round_mean"] = kNotApplicable;
  state.SetLabel(jam ? "jammed" : "clean");
}

void E15_KSelection(benchmark::State& state) {
  const auto k = static_cast<std::uint64_t>(state.range(0));
  const int warm = static_cast<int>(state.range(1));
  const std::uint64_t n = 1024;
  const std::size_t kTrials = trials(20);

  double slots_sum = 0.0, first_round = 0.0, later_rounds = 0.0;
  std::size_t later_count = 0;
  for (auto _ : state) {
    const Rng base(0xE15C);
    for (std::size_t t = 0; t < kTrials; ++t) {
      KSelectionParams params;
      params.n = n;
      params.k = k;
      params.eps = 0.5;
      params.warm_start = warm != 0;
      AdversarySpec spec = adversary("saturating", 64, 0.5);
      spec.n = n;
      Rng rng = base.child(t);
      auto adv = make_adversary(spec, rng.child(1));
      Rng sim = rng.child(2);
      const auto res = run_k_selection(params, *adv, sim);
      slots_sum += static_cast<double>(res.slots);
      if (!res.slots_per_round.empty()) {
        first_round += static_cast<double>(res.slots_per_round.front());
        for (std::size_t i = 1; i < res.slots_per_round.size(); ++i) {
          later_rounds += static_cast<double>(res.slots_per_round[i]);
          ++later_count;
        }
      }
    }
  }
  const auto td = static_cast<double>(kTrials);
  state.counters["k"] = static_cast<double>(k);
  state.counters["slots_mean"] = slots_sum / td;
  state.counters["first_round_mean"] = first_round / td;
  state.counters["later_round_mean"] =
      later_count > 0 ? later_rounds / static_cast<double>(later_count) : 0.0;
  state.counters["n"] = static_cast<double>(n);
  state.counters["budget_slots"] = kNotApplicable;
  state.counters["mean_abs_err_log2"] = kNotApplicable;
  state.counters["worst_abs_err_log2"] = kNotApplicable;
  state.SetLabel(warm ? "warm_start" : "cold_start");
}

BENCHMARK(E15_SizeApproximation)
    ->ArgsProduct({{8, 12, 16, 20}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(E15_KSelection)
    ->ArgsProduct({{1, 4, 16, 64}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
