// E4 — Lemma 2.8: Estimation(2) either yields a Single or returns i in
// [log log n - 1, max(log log n, log T) + 1], in O(max(log n, T)) slots.
// Sweep n x T; counters report the empirical in-range rate, the mean
// returned round, the Single short-circuit rate, and the slot cost.
#include "bench_common.hpp"

#include "channel/channel.hpp"
#include "protocols/estimation.hpp"
#include "support/math.hpp"

namespace jamelect::bench {
namespace {

struct EstimationTrial {
  bool single = false;
  bool completed = false;
  std::int64_t result = -1;
  std::int64_t slots = 0;
};

EstimationTrial run_estimation(std::uint64_t n, std::int64_t T, double eps,
                               Rng rng) {
  Estimation est(2);
  AdversarySpec spec = adversary(T > 1 ? "saturating" : "none", T, eps);
  spec.n = n;
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  EstimationTrial trial;
  const std::int64_t budget = 1 << 24;
  while (!est.completed() && !est.elected() && trial.slots < budget) {
    const double p = est.transmit_probability();
    const bool jam = adv->step();
    const auto probs = slot_probabilities(n, p);
    const double r = sim.uniform();
    const std::uint64_t cnt =
        r < probs.null ? 0 : (r < probs.null + probs.single ? 1 : 2);
    const ChannelState st = resolve_slot(cnt, jam);
    est.observe(st);
    adv->observe({trial.slots, cnt, jam, st});
    ++trial.slots;
  }
  trial.single = est.elected();
  trial.completed = est.completed();
  if (trial.completed) trial.result = est.result();
  return trial;
}

void E04_EstimationAccuracy(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const auto T = static_cast<std::int64_t>(1) << state.range(1);
  const double eps = 0.5;
  const auto range = estimation_range(n, T);
  const std::size_t kTrials = trials(40);

  double in_range = 0, singles = 0, result_sum = 0, slots_sum = 0,
         completed = 0;
  for (auto _ : state) {
    const Rng base(0xE04);
    for (std::size_t k = 0; k < kTrials; ++k) {
      const auto t = run_estimation(n, T, eps, base.child(k));
      slots_sum += static_cast<double>(t.slots);
      if (t.single) {
        ++singles;
        continue;
      }
      ++completed;
      result_sum += static_cast<double>(t.result);
      const double i = static_cast<double>(t.result);
      if (i >= range.lo && i <= range.hi) ++in_range;
    }
  }
  const double denom = std::max(1.0, completed);
  state.counters["n"] = static_cast<double>(n);
  state.counters["T"] = static_cast<double>(T);
  state.counters["range_lo"] = range.lo;
  state.counters["range_hi"] = range.hi;
  state.counters["result_mean"] = result_sum / denom;
  state.counters["in_range_rate"] = in_range / denom;
  state.counters["single_rate"] = singles / static_cast<double>(kTrials);
  state.counters["slots_mean"] = slots_sum / static_cast<double>(kTrials);
}

BENCHMARK(E04_EstimationAccuracy)
    ->ArgsProduct({{7, 10, 14, 18, 22}, {0, 8, 12}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
