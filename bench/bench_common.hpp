// Shared plumbing for the experiment benches (DESIGN.md §4).
//
// Each bench binary reproduces one paper claim: a google-benchmark case
// per sweep point, with the measured quantities exported as counters so
// one run prints the whole series. Wall-clock time is irrelevant here —
// the unit of cost is SLOTS — so every case runs exactly once
// (->Iterations(1)) and the interesting numbers live in the counters.
//
// Environment knobs:
//   JAMELECT_BENCH_TRIALS — Monte-Carlo trials per sweep point
//                           (default 20; raise for smoother curves).
//   JAMELECT_THREADS      — thread-pool width for the trial fan-out.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>

#include "analysis/theory.hpp"
#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "sim/montecarlo.hpp"

namespace jamelect::bench {

inline std::size_t trials(std::size_t def = 20) {
  if (const char* env = std::getenv("JAMELECT_BENCH_TRIALS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return def;
}

inline McConfig mc(std::uint64_t seed, std::int64_t max_slots,
                   std::size_t default_trials = 20) {
  McConfig c;
  c.trials = trials(default_trials);
  c.seed = seed;
  c.max_slots = max_slots;
  return c;
}

/// Standard counter set for one Monte-Carlo result.
inline void report(benchmark::State& state, const McResult& res) {
  state.counters["slots_mean"] = res.slots.mean;
  state.counters["slots_median"] = res.slots.median;
  state.counters["slots_p95"] = res.slots.p95;
  state.counters["success_rate"] = res.success.rate;
  state.counters["jams_mean"] = res.jams.mean;
  state.counters["energy_per_station"] = res.energy_per_station.mean;
}

inline AdversarySpec adversary(const std::string& policy, std::int64_t T,
                               double eps) {
  AdversarySpec spec;
  spec.policy = policy;
  spec.T = T;
  spec.eps = eps;
  return spec;
}

inline UniformProtocolFactory lesk_factory(double eps) {
  return [eps] { return std::make_unique<Lesk>(eps); };
}

inline UniformProtocolFactory lesu_factory(LesuParams params = {}) {
  return [params] { return std::make_unique<Lesu>(params); };
}

/// Names for policy-index sweep arguments (benchmark args are ints).
inline const char* policy_name(int idx) {
  switch (idx) {
    case 0: return "none";
    case 1: return "saturating";
    case 2: return "periodic";
    case 3: return "bernoulli";
    case 4: return "single_denial";
    case 5: return "collision_forcer";
    default: return "none";
  }
}

}  // namespace jamelect::bench
