// Shared plumbing for the experiment benches (DESIGN.md §4).
//
// Each bench binary reproduces one paper claim: a google-benchmark case
// per sweep point, with the measured quantities exported as counters so
// one run prints the whole series. Wall-clock time is irrelevant here —
// the unit of cost is SLOTS — so every case runs exactly once
// (->Iterations(1)) and the interesting numbers live in the counters.
//
// Environment knobs:
//   JAMELECT_BENCH_TRIALS — Monte-Carlo trials per sweep point
//                           (default 20; raise for smoother curves).
//   JAMELECT_THREADS      — thread-pool width for the trial fan-out.
//   JAMELECT_MANIFEST     — set to 0/off to skip the run manifest;
//   JAMELECT_MANIFEST_DIR — where to write it (default: cwd).
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>

#include "analysis/theory.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "sim/montecarlo.hpp"
#include "support/ctr_rng.hpp"
#include "support/thread_pool.hpp"
#include "support/wide_rng.hpp"

namespace jamelect::bench {

inline std::size_t trials(std::size_t def = 20) {
  if (const char* env = std::getenv("JAMELECT_BENCH_TRIALS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return def;
}

inline McConfig mc(std::uint64_t seed, std::int64_t max_slots,
                   std::size_t default_trials = 20) {
  McConfig c;
  c.trials = trials(default_trials);
  c.seed = seed;
  c.max_slots = max_slots;
  return c;
}

/// Standard counter set for one Monte-Carlo result.
inline void report(benchmark::State& state, const McResult& res) {
  state.counters["slots_mean"] = res.slots.mean;
  state.counters["slots_median"] = res.slots.median;
  state.counters["slots_p95"] = res.slots.p95;
  state.counters["success_rate"] = res.success.rate;
  state.counters["jams_mean"] = res.jams.mean;
  state.counters["energy_per_station"] = res.energy_per_station.mean;
}

inline AdversarySpec adversary(const std::string& policy, std::int64_t T,
                               double eps) {
  AdversarySpec spec;
  spec.policy = policy;
  spec.T = T;
  spec.eps = eps;
  return spec;
}

inline UniformProtocolFactory lesk_factory(double eps) {
  return [eps] { return std::make_unique<Lesk>(eps); };
}

inline UniformProtocolFactory lesu_factory(LesuParams params = {}) {
  return [params] { return std::make_unique<Lesu>(params); };
}

/// Build flavour actually compiled into this binary. The library's own
/// `library_build_type` context line reports how *libbenchmark* was
/// built (Debian ships a debug-tagged static archive), which is useless
/// for deciding whether the numbers are trustworthy; this reports how
/// the bench code itself was compiled.
inline const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// Names for policy-index sweep arguments (benchmark args are ints).
inline const char* policy_name(int idx) {
  switch (idx) {
    case 0: return "none";
    case 1: return "saturating";
    case 2: return "periodic";
    case 3: return "bernoulli";
    case 4: return "single_denial";
    case 5: return "collision_forcer";
    default: return "none";
  }
}

/// Shared main for every bench binary: runs google-benchmark, then
/// writes `<binary>.manifest.json` recording the full command line,
/// environment knobs, build provenance, and the metric rollup of the
/// run (JAMELECT_MANIFEST=0 disables; see obs/manifest.hpp).
inline int bench_main(int argc, char** argv) {
  // Probe mode for scripts: print the compiled build flavour and exit,
  // so scripts/run_bench_perf.sh can refuse to record debug numbers.
  if (const char* probe = std::getenv("JAMELECT_BUILD_PROBE");
      probe != nullptr && probe[0] != '\0' && probe[0] != '0') {
    // "obs" reports whether observability is compiled in (the CI
    // profiler-overhead guard asserts OFF builds really compiled it
    // out); any other non-zero value keeps the original build-flavour
    // probe contract ("release"/"debug", exact match).
    if (std::string_view(probe) == "obs") {
      std::printf("obs=%s\n", obs::kObsCompiledIn ? "on" : "off");
    } else {
      std::printf("%s\n", build_type());
    }
    return 0;
  }
  benchmark::AddCustomContext("jamelect_build_type", build_type());
  // The wide-batch backend this process resolved (cpuid + build flags +
  // JAMELECT_FORCE_SCALAR): batch-engine numbers are only comparable
  // across runs with the same backend.
  benchmark::AddCustomContext("jamelect_wide_isa",
                              wide_isa_name(active_wide_isa()));
  // Effective trial fan-out width: pool workers + the participating
  // caller (JAMELECT_THREADS or hardware concurrency). The parallel
  // orchestration cases' numbers only mean anything relative to this.
  benchmark::AddCustomContext("jamelect_threads",
                              std::to_string(global_pool().size() + 1));
  // Which AES implementation (aesni/soft) serves rng_backend=aes_ctr
  // cases in this process (cpuid + JAMELECT_FORCE_SOFT_AES).
  benchmark::AddCustomContext("jamelect_rng_backend_aes",
                              aes_isa_name(active_aes_isa()));

  obs::MetricsRegistry::global().set_enabled(true);

  std::string cmdline;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) cmdline += ' ';
    cmdline += argv[i];
  }
  std::string name = argc > 0 && argv[0] != nullptr ? argv[0] : "bench";
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (const std::string path = obs::manifest_path_for(name); !path.empty()) {
    obs::RunManifest manifest;
    manifest.name = name;
    manifest.config["cmdline"] = cmdline;
    manifest.config["build_type"] = build_type();
    manifest.config["wide_isa"] = wide_isa_name(active_wide_isa());
    manifest.config["threads_effective"] =
        std::to_string(global_pool().size() + 1);
    manifest.config["rng_backend_aes"] = aes_isa_name(active_aes_isa());
    manifest.config["trials"] = std::to_string(trials());
    if (const char* threads = std::getenv("JAMELECT_THREADS")) {
      manifest.config["threads"] = threads;
    }
    if (!manifest.write_file(path)) {
      std::fprintf(stderr, "warning: could not write manifest %s\n",
                   path.c_str());
    }
  }
  return 0;
}

}  // namespace jamelect::bench

/// Drop-in replacement for BENCHMARK_MAIN() that also emits the run
/// manifest. Every bench binary uses this.
#define JAMELECT_BENCH_MAIN()                         \
  int main(int argc, char** argv) {                   \
    return ::jamelect::bench::bench_main(argc, argv); \
  }
