// E9 — Lemma 2.7's lower bound Omega(max(T, (1/eps) log n)): against
// the periodic blocking adversary (jam the first (1-eps)-fraction of
// every T-block), measured slots must sit at or above the bound; the
// `slots_over_bound` ratio shows how tight LESK is.
#include "bench_common.hpp"

namespace jamelect::bench {
namespace {

void E09_LowerBound(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const double eps = static_cast<double>(state.range(1)) / 1000.0;
  const auto T = static_cast<std::int64_t>(1) << state.range(2);
  AdversarySpec adv = adversary("periodic", T, eps);
  const auto cfg = mc(0xE09, 1 << 24);

  McResult res;
  for (auto _ : state) {
    res = run_aggregate_mc(lesk_factory(eps), adv, n, cfg);
  }
  report(state, res);
  const double bound = lower_bound_slots(n, eps, T);
  state.counters["n"] = static_cast<double>(n);
  state.counters["eps_milli"] = static_cast<double>(state.range(1));
  state.counters["T"] = static_cast<double>(T);
  state.counters["lower_bound"] = bound;
  state.counters["slots_over_bound"] = res.slots.mean / bound;
}

BENCHMARK(E09_LowerBound)
    ->ArgsProduct({{8, 12, 16}, {500, 250}, {6, 10, 14}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
