// E1 — LESK runs in O(log n) for constant eps and T = O(log n)
// (Theorem 2.6 / abstract). Sweep n over powers of two, three
// adversaries; the key series is slots_per_log2n, which should be flat
// (up to the startup ramp's a*log2(n) constant — i.e. linear in log n
// overall).
#include "bench_common.hpp"

namespace jamelect::bench {
namespace {

void E01_LeskScalingN(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int policy = static_cast<int>(state.range(1));
  const double eps = 0.5;
  AdversarySpec adv = adversary(policy_name(policy), 64, eps);
  const auto cfg = mc(0xE01, 1 << 22);

  McResult res;
  for (auto _ : state) {
    res = run_aggregate_mc(lesk_factory(eps), adv, n, cfg);
  }
  report(state, res);
  const double log2n = std::log2(static_cast<double>(n));
  state.counters["n"] = static_cast<double>(n);
  state.counters["slots_per_log2n"] = res.slots.mean / log2n;
  state.counters["theory_budget"] = lesk_time_bound(n, eps, 1.0);
  state.SetLabel(std::string("adv=") + policy_name(policy));
}

BENCHMARK(E01_LeskScalingN)
    ->ArgsProduct({{6, 8, 10, 12, 14, 16, 18, 20}, {0, 1, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
