// E6 — Theorem 2.9 case 2 / §1.3: for constant eps and large T, LESU
// runs in O(T log log T), beating the O(T log T) of [3]. Sweep T at
// constant eps; `slots_per_T` should grow like log log T (very slowly),
// distinctly slower than log T.
#include "bench_common.hpp"

namespace jamelect::bench {
namespace {

void E06_LesuLargeT(benchmark::State& state) {
  const auto T = static_cast<std::int64_t>(1) << state.range(0);
  const double eps = 0.5;
  const std::uint64_t n = 256;
  AdversarySpec adv = adversary("saturating", T, eps);
  const auto cfg = mc(0xE06, 1 << 26, 8);

  McResult res;
  for (auto _ : state) {
    res = run_aggregate_mc(lesu_factory(), adv, n, cfg);
  }
  report(state, res);
  const double Td = static_cast<double>(T);
  state.counters["T"] = Td;
  state.counters["slots_per_T"] = res.slots.mean / Td;
  state.counters["loglogT"] = std::log2(std::max(2.0, std::log2(Td)));
  state.counters["logT"] = std::log2(Td);
}

BENCHMARK(E06_LesuLargeT)
    ->Arg(8)->Arg(10)->Arg(12)->Arg(14)->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
