// E8 — the paper's §1.3 comparison: LESK elects in O(log n) where the
// ARSS robust MAC of [3] needs O(log^4 n) (and classic estimation
// protocols are fast only when unjammed). One case per (n, protocol,
// adversary); who wins and by what growth rate is the series to read.
// ARSS is granted the true (n, T) for its gamma — a baseline-favourable
// substitution (DESIGN.md §5).
#include "bench_common.hpp"

#include <vector>

#include "baselines/arss.hpp"
#include "baselines/arss_flock.hpp"
#include "baselines/nakano_olariu.hpp"
#include "baselines/nocd_election.hpp"
#include "baselines/willard.hpp"

namespace jamelect::bench {
namespace {

constexpr std::int64_t kT = 64;
constexpr double kEps = 0.5;

void E08_Lesk(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  AdversarySpec adv = adversary(jam ? "saturating" : "none", kT, kEps);
  McConfig cfg = mc(0xE08, 1 << 22);
  cfg.batch = 64;  // batched kernel engine; bit-identical to batch = 0
  McResult res;
  for (auto _ : state) res = run_aggregate_mc(lesk_factory(kEps), adv, n, cfg);
  report(state, res);
  state.counters["n"] = static_cast<double>(n);
  // Every E08 case exports the ARSS O(log^4 n) reference curve: it is
  // the series' comparison line, and the CSV reporter aborts unless all
  // runs in a binary carry the same counter set.
  state.counters["log4_ref"] = arss_time_bound(n);
  state.SetLabel(jam ? "jammed" : "clean");
}

void E08_Lesu(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  AdversarySpec adv = adversary(jam ? "saturating" : "none", kT, kEps);
  McConfig cfg = mc(0xE08, 1 << 22);
  cfg.batch = 64;
  McResult res;
  for (auto _ : state) res = run_aggregate_mc(lesu_factory(), adv, n, cfg);
  report(state, res);
  state.counters["n"] = static_cast<double>(n);
  state.counters["log4_ref"] = arss_time_bound(n);
  state.SetLabel(jam ? "jammed" : "clean");
}

void E08_Arss(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  AdversarySpec adv = adversary(jam ? "saturating" : "none", kT, kEps);
  McConfig cfg = mc(0xE08, 1 << 19, 5);  // per-station engine: keep it light
  cfg.batch = 4;  // devirtualized station chunks (sim/station_batch.hpp)
  const double gamma = arss_gamma(n, kT);
  McResult res;
  for (auto _ : state) {
    res = run_station_mc(
        [gamma](StationId) -> StationProtocolPtr {
          ArssParams params;
          params.gamma = gamma;
          return std::make_unique<ArssStation>(params);
        },
        adv, n, {CdMode::kStrong, StopRule::kAllDone, cfg.max_slots}, cfg);
  }
  report(state, res);
  state.counters["n"] = static_cast<double>(n);
  state.counters["log4_ref"] = arss_time_bound(n);
  state.SetLabel(jam ? "jammed" : "clean");
}

void E08_Willard(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  AdversarySpec adv = adversary(jam ? "saturating" : "none", kT, kEps);
  McConfig cfg = mc(0xE08, 1 << 18);  // it fails under jamming: cap it
  cfg.batch = 64;
  McResult res;
  for (auto _ : state) {
    res = run_aggregate_mc([] { return std::make_unique<Willard>(); }, adv, n,
                           cfg);
  }
  report(state, res);
  state.counters["n"] = static_cast<double>(n);
  state.counters["log4_ref"] = arss_time_bound(n);
  state.SetLabel(jam ? "jammed" : "clean");
}

void E08_NakanoOlariu(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  AdversarySpec adv = adversary(jam ? "saturating" : "none", kT, kEps);
  McConfig cfg = mc(0xE08, 1 << 18);
  cfg.batch = 64;
  McResult res;
  for (auto _ : state) {
    res = run_aggregate_mc([] { return std::make_unique<NakanoOlariu>(); },
                           adv, n, cfg);
  }
  report(state, res);
  state.counters["n"] = static_cast<double>(n);
  state.counters["log4_ref"] = arss_time_bound(n);
  state.SetLabel(jam ? "jammed" : "clean");
}

// The class-compressed ARSS engine takes the comparison to n = 2^16,
// where log2(n)^4 has grown 8x over n = 2^12 while LESK's log2(n) grew
// only 1.3x.
void E08_ArssLargeN(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  const double gamma = arss_gamma(n, kT);
  const std::size_t kTrials = trials(10);

  std::vector<double> slots, jams, energy;
  std::size_t successes = 0;
  for (auto _ : state) {
    slots.clear();
    jams.clear();
    energy.clear();
    successes = 0;
    const Rng base(0xE08F);
    for (std::size_t t = 0; t < kTrials; ++t) {
      ArssFlockConfig config;
      config.n = n;
      config.params.gamma = gamma;
      config.max_slots = 1 << 22;
      AdversarySpec spec = adversary(jam ? "saturating" : "none", kT, kEps);
      spec.n = n;
      Rng rng = base.child(t);
      auto adv = make_adversary(spec, rng.child(1));
      Rng sim = rng.child(2);
      const auto out = run_arss_flock(config, *adv, sim);
      successes += out.elected ? 1 : 0;
      slots.push_back(static_cast<double>(out.slots));
      jams.push_back(static_cast<double>(out.jams));
      energy.push_back(out.transmissions / static_cast<double>(n));
    }
  }
  // Same counter set as report(): the CSV reporter requires it, and the
  // per-trial samples are in hand anyway.
  const Summary slots_summary = summarize(slots);
  state.counters["slots_mean"] = slots_summary.mean;
  state.counters["slots_median"] = slots_summary.median;
  state.counters["slots_p95"] = slots_summary.p95;
  state.counters["success_rate"] =
      static_cast<double>(successes) / static_cast<double>(kTrials);
  state.counters["jams_mean"] = summarize(jams).mean;
  state.counters["energy_per_station"] = summarize(energy).mean;
  state.counters["n"] = static_cast<double>(n);
  state.counters["log4_ref"] = arss_time_bound(n);
  state.SetLabel(jam ? "jammed" : "clean");
}

void E08_NoCd(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  AdversarySpec adv = adversary(jam ? "saturating" : "none", kT, kEps);
  McConfig cfg = mc(0xE08, 1 << 18);
  cfg.batch = 64;
  McResult res;
  for (auto _ : state) {
    res = run_aggregate_mc(
        [] { return std::make_unique<NoCdElection>(NoCdElectionParams{4}); },
        adv, n, cfg);
  }
  report(state, res);
  state.counters["n"] = static_cast<double>(n);
  state.counters["log4_ref"] = arss_time_bound(n);
  state.SetLabel(jam ? "jammed" : "clean");
}

BENCHMARK(E08_Lesk)->ArgsProduct({{6, 8, 10, 12}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(E08_Lesu)->ArgsProduct({{6, 8, 10, 12}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(E08_Arss)->ArgsProduct({{6, 8, 10, 12}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(E08_Willard)->ArgsProduct({{6, 8, 10, 12}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(E08_NakanoOlariu)->ArgsProduct({{6, 8, 10, 12}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(E08_NoCd)->ArgsProduct({{6, 8, 10, 12}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(E08_ArssLargeN)->ArgsProduct({{12, 14, 16}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
