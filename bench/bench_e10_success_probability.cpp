// E10 — the "with high probability" in Theorem 2.6: within the explicit
// time budget t(n, eps, beta=1), the failure rate must be at most
// ~1/n. Many trials per n; `failure_rate` and its Wilson upper bound
// are compared against 1/n.
#include "bench_common.hpp"

namespace jamelect::bench {
namespace {

void E10_SuccessProbability(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const double eps = 0.5;
  const double budget = lesk_time_bound(n, eps, 1.0);
  AdversarySpec adv = adversary("saturating", 64, eps);
  McConfig cfg = mc(0xE10, static_cast<std::int64_t>(budget), 400);

  McResult res;
  for (auto _ : state) {
    res = run_aggregate_mc(lesk_factory(eps), adv, n, cfg);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["trials"] = static_cast<double>(res.trials);
  state.counters["budget_slots"] = budget;
  state.counters["failure_rate"] =
      1.0 - res.success.rate;
  state.counters["failure_upper95"] = 1.0 - res.success.lower;
  state.counters["one_over_n"] = 1.0 / static_cast<double>(n);
  state.counters["slots_p99"] = res.slots.p99;
}

BENCHMARK(E10_SuccessProbability)
    ->Arg(8)->Arg(10)->Arg(12)->Arg(14)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
