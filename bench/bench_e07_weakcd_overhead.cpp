// E7 — Lemma 3.1 / Theorems 3.2-3.3: the Notification transform turns a
// weak-CD selection-resolution into full weak-CD leader election at a
// CONSTANT factor. Sweep n; `weak_over_strong` (LEWK/LESK and
// LEWU/LESU slot ratios) should stay bounded as n grows.
#include "bench_common.hpp"

namespace jamelect::bench {
namespace {

void E07_WeakCdOverhead(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int stack = static_cast<int>(state.range(1));  // 0 LESK/LEWK, 1 LESU/LEWU
  const int jam = static_cast<int>(state.range(2));
  const double eps = 0.5;
  AdversarySpec adv = adversary(jam ? "saturating" : "none", 64, eps);
  auto cfg = mc(0xE07, 1 << 24);
  cfg.batch = 64;  // aggregate + hybrid batch engines; bit-identical to batch = 0

  const UniformProtocolFactory inner =
      stack == 0 ? lesk_factory(eps) : lesu_factory();
  McResult strong, weak;
  for (auto _ : state) {
    strong = run_aggregate_mc(inner, adv, n, cfg);
    weak = run_hybrid_mc(inner, adv, n, cfg);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["strong_slots"] = strong.slots.mean;
  state.counters["weak_slots"] = weak.slots.mean;
  state.counters["weak_over_strong"] = weak.slots.mean / strong.slots.mean;
  state.counters["weak_success"] = weak.success.rate;
  state.SetLabel(std::string(stack == 0 ? "LESK->LEWK" : "LESU->LEWU") +
                 (jam ? " jammed" : " clean"));
}

BENCHMARK(E07_WeakCdOverhead)
    ->ArgsProduct({{4, 6, 8, 10, 12, 14}, {0, 1}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
