// E12 — design ablation (§2's intuition): the asymmetric eps/8
// Collision increment is what defeats a majority-jamming adversary.
// Three arms under a (T, 1-eps) saturating adversary with eps < 1/2:
//   * LESK            — elects (success_rate ~ 1);
//   * symmetric-LESK  — the estimate diverges, election times out;
//   * Willard         — classic estimation, same failure mode.
// `final_estimate` shows the divergence directly.
#include "bench_common.hpp"

#include "baselines/lesk_symmetric.hpp"
#include "baselines/willard.hpp"
#include "sim/aggregate.hpp"

namespace jamelect::bench {
namespace {

constexpr std::uint64_t kN = 1024;
constexpr std::int64_t kMaxSlots = 1 << 17;

template <typename Protocol>
void run_arm(benchmark::State& state, double eps) {
  const std::size_t kTrials = trials(20);
  double successes = 0, slots_sum = 0, final_u = 0;
  for (auto _ : state) {
    const Rng base(0xE12);
    for (std::size_t k = 0; k < kTrials; ++k) {
      Protocol proto;
      AdversarySpec spec = adversary("saturating", 64, eps);
      spec.n = kN;
      spec.protocol_eps = eps;
      Rng rng = base.child(k);
      auto adv = make_adversary(spec, rng.child(1));
      Rng sim = rng.child(2);
      const auto out = run_aggregate(proto, *adv, {kN, kMaxSlots}, sim);
      successes += out.elected ? 1 : 0;
      slots_sum += static_cast<double>(out.slots);
      final_u += proto.estimate();
    }
  }
  const auto td = static_cast<double>(kTrials);
  state.counters["eps_milli"] = eps * 1000;
  state.counters["success_rate"] = successes / td;
  state.counters["slots_mean"] = slots_sum / td;
  state.counters["final_estimate"] = final_u / td;
  state.counters["log2n"] = std::log2(static_cast<double>(kN));
}

// LESK needs an eps parameter; give the template arm a conservative
// fixed 0.25 (running with eps_hat <= eps keeps Theorem 2.6 valid).
class LeskArm final : public UniformProtocol {
 public:
  LeskArm() : inner_(0.25) {}
  [[nodiscard]] double transmit_probability() override {
    return inner_.transmit_probability();
  }
  void observe(ChannelState s) override { inner_.observe(s); }
  [[nodiscard]] bool elected() const override { return inner_.elected(); }
  [[nodiscard]] std::string name() const override { return inner_.name(); }
  [[nodiscard]] UniformProtocolPtr clone() const override {
    return std::make_unique<LeskArm>(*this);
  }
  [[nodiscard]] double estimate() const override { return inner_.estimate(); }

 private:
  Lesk inner_;
};

void E12_Lesk(benchmark::State& state) {
  run_arm<LeskArm>(state, static_cast<double>(state.range(0)) / 1000.0);
}
void E12_SymmetricLesk(benchmark::State& state) {
  run_arm<SymmetricLesk>(state, static_cast<double>(state.range(0)) / 1000.0);
}
void E12_Willard(benchmark::State& state) {
  run_arm<Willard>(state, static_cast<double>(state.range(0)) / 1000.0);
}

BENCHMARK(E12_Lesk)->Arg(250)->Arg(400)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(E12_SymmetricLesk)->Arg(250)->Arg(400)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(E12_Willard)->Arg(250)->Arg(400)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
