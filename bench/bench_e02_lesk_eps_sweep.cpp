// E2 — LESK's eps dependence: Theorem 2.6 gives
// O(max{T, log n / (eps^3 log(1/eps))}). Sweep eps downward at fixed n
// under the saturating adversary; `slots_over_bound` compares the
// measured mean against the eps-shaped reference curve (should stay
// roughly constant), while `slots_mean` itself blows up as eps -> 0.
#include "bench_common.hpp"

namespace jamelect::bench {
namespace {

void E02_LeskEpsSweep(benchmark::State& state) {
  const double eps = static_cast<double>(state.range(0)) / 1000.0;
  const int policy = static_cast<int>(state.range(1));
  const std::uint64_t n = 4096;
  AdversarySpec adv = adversary(policy_name(policy), 64, eps);
  adv.threshold = 0.01;  // single_denial: deny even faint Single odds
  const auto cfg = mc(0xE02, 1 << 24);

  McResult res;
  for (auto _ : state) {
    res = run_aggregate_mc(lesk_factory(eps), adv, n, cfg);
  }
  report(state, res);
  const double log2n = std::log2(static_cast<double>(n));
  const double shape = log2n / (eps * eps * eps * safe_log2_inv_eps(eps));
  state.counters["eps_milli"] = static_cast<double>(state.range(0));
  state.counters["shape_ref"] = shape;
  state.counters["slots_over_shape"] = res.slots.mean / shape;
  state.counters["theory_budget"] = lesk_time_bound(n, eps, 1.0);
  state.SetLabel(std::string("adv=") + policy_name(policy));
}

BENCHMARK(E02_LeskEpsSweep)
    ->ArgsProduct({{800, 600, 500, 400, 300, 200, 150, 100}, {1, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
