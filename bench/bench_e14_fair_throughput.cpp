// E14 (extension experiment) — sustained channel throughput under
// jamming. The paper's reference [3] frames robust MAC design around
// *constant competitive throughput*; §4 suggests "fair use of the
// wireless channel" as an application of the paper's building blocks.
// This bench measures both MACs as long-running channels:
//   * rotation MAC (extensions/fair_mac): repeated LESK elections, one
//     grant per round — throughput = rounds / slots; fairness = Jain
//     index of the grant histogram;
//   * ARSS in MAC mode (elect_on_single = false): throughput =
//     successful transmissions / slots.
// The claim to read: both sustain Theta(1/log n)-ish or constant-ish
// useful-slot rates despite the (T, 1-eps) adversary, and the rotation
// MAC's fairness stays ~1.
#include "bench_common.hpp"

#include "baselines/arss.hpp"
#include "extensions/fair_mac.hpp"
#include "sim/engine.hpp"

namespace jamelect::bench {
namespace {

void E14_RotationMac(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  FairMacParams params;
  params.n = n;
  params.rounds = 64;
  params.eps = 0.5;
  AdversarySpec adv = adversary(jam ? "saturating" : "none", 64, 0.5);

  FairMacResult res;
  for (auto _ : state) {
    res = run_fair_mac(params, adv, Rng(0xE14));
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds"] = static_cast<double>(res.rounds_completed);
  state.counters["slots"] = static_cast<double>(res.slots_total);
  state.counters["grants_per_kslot"] =
      1000.0 * static_cast<double>(res.rounds_completed) /
      static_cast<double>(res.slots_total);
  state.counters["jain_index"] =
      res.rounds_completed >= 1 ? res.jain_index() : 0.0;
  state.SetLabel(jam ? "jammed" : "clean");
}

void E14_ArssMac(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(1) << state.range(0);
  const int jam = static_cast<int>(state.range(1));
  AdversarySpec spec = adversary(jam ? "saturating" : "none", 64, 0.5);
  spec.n = n;
  constexpr std::int64_t kSlots = 1 << 14;
  const double gamma = arss_gamma(n, 64);

  TrialOutcome out;
  for (auto _ : state) {
    std::vector<StationProtocolPtr> stations;
    for (std::uint64_t i = 0; i < n; ++i) {
      ArssParams params;
      params.gamma = gamma;
      params.elect_on_single = false;  // run as a plain MAC
      stations.push_back(std::make_unique<ArssStation>(params));
    }
    Rng rng(0xE14);
    SlotEngine engine(std::move(stations), make_adversary(spec, rng.child(1)),
                      rng.child(2),
                      {CdMode::kStrong, StopRule::kAllDone, kSlots});
    out = engine.run();
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["slots"] = static_cast<double>(out.slots);
  state.counters["grants_per_kslot"] =
      1000.0 * static_cast<double>(out.singles) / static_cast<double>(out.slots);
  state.SetLabel(jam ? "jammed" : "clean");
}

BENCHMARK(E14_RotationMac)->ArgsProduct({{4, 6, 8}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(E14_ArssMac)->ArgsProduct({{4, 6, 8}, {0, 1}})->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace jamelect::bench

JAMELECT_BENCH_MAIN();
