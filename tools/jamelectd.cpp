// jamelectd — the jamelect sweep daemon.
//
//   jamelectd [--host=127.0.0.1] [--port=7979] [--workers=2]
//             [--queue=64] [--cache-dir=DIR] [--heartbeat-ms=500]
//             [--cache-max-entries=0] [--cache-max-bytes=0]
//             [--max-trials=1000000] [--max-slots=10000000]
//             [--manifest=jamelectd]
//
// Serves parameter sweeps over the newline-delimited JSON protocol and
// the HTTP/1.1 shim (docs/SERVICE.md). Results are memoized by manifest
// fingerprint (config + seed + git SHA) in memory and, when
// --cache-dir (or env JAMELECT_CACHE_DIR) is set, on disk — so a
// restarted daemon still answers repeated sweeps from cache.
//
// --port=0 binds an ephemeral port; the chosen port is printed on the
// "jamelectd listening on" line, which scripts/service_smoke.sh parses.
//
// SIGINT/SIGTERM drain gracefully: stop admitting, fail queued jobs,
// let running sweeps finish their current trial chunk (the Monte-Carlo
// drivers poll the same shutdown flag), flush the run manifest, exit 0.
#include <cstdlib>
#include <iostream>
#include <thread>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "support/cli.hpp"
#include "support/shutdown.hpp"

int main(int argc, char** argv) {
  using namespace jamelect;
  const Cli cli(argc, argv);

  service::ServiceConfig svc_cfg;
  svc_cfg.workers = cli.get_uint("workers", 2);
  svc_cfg.max_queue = cli.get_uint("queue", 64);
  const char* env_cache = std::getenv("JAMELECT_CACHE_DIR");
  svc_cfg.cache_dir =
      cli.get_string("cache-dir", env_cache != nullptr ? env_cache : "");
  // 0 = unbounded; with --cache-dir set, keys evicted by these bounds
  // are still served from the disk tier.
  svc_cfg.cache_max_entries = cli.get_uint("cache-max-entries", 0);
  svc_cfg.cache_max_bytes = cli.get_uint("cache-max-bytes", 0);
  svc_cfg.limits.max_trials = cli.get_uint("max-trials", 1'000'000);
  svc_cfg.limits.max_slots =
      cli.get_int("max-slots", svc_cfg.limits.max_slots);

  service::ServerConfig srv_cfg;
  srv_cfg.host = cli.get_string("host", "127.0.0.1");
  srv_cfg.port = static_cast<std::uint16_t>(cli.get_uint("port", 7979));
  srv_cfg.heartbeat_ms =
      static_cast<int>(cli.get_int("heartbeat-ms", srv_cfg.heartbeat_ms));

  obs::MetricsRegistry::global().set_enabled(true);
  install_shutdown_handlers();

  service::SweepService service(svc_cfg);
  service::SocketServer server(service, srv_cfg);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "jamelectd: " << error << "\n";
    return 1;
  }
  std::cout << "jamelectd listening on " << srv_cfg.host << ":"
            << server.port() << " (workers=" << svc_cfg.workers
            << " queue=" << svc_cfg.max_queue << " cache="
            << (svc_cfg.cache_dir.empty() ? "memory" : svc_cfg.cache_dir)
            << ")" << std::endl;

  while (!shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "jamelectd: signal " << shutdown_signal()
            << ", draining" << std::endl;

  // Order matters: stopping the service resolves every job (queued ->
  // failed, running -> drained), which releases connections blocked in
  // wait(); only then can the server's connection count reach zero.
  service.stop();
  server.stop();

  obs::RunManifest manifest;
  manifest.name = cli.get_string("manifest", "jamelectd");
  manifest.config["host"] = srv_cfg.host;
  manifest.config["port"] = std::to_string(server.port());
  manifest.config["workers"] = std::to_string(svc_cfg.workers);
  manifest.config["queue"] = std::to_string(svc_cfg.max_queue);
  manifest.config["cache_dir"] = svc_cfg.cache_dir;
  manifest.config["cache_max_entries"] =
      std::to_string(svc_cfg.cache_max_entries);
  manifest.config["cache_max_bytes"] = std::to_string(svc_cfg.cache_max_bytes);
  manifest.config["cache_evictions"] =
      std::to_string(service.cache().evictions());
  manifest.config["requests"] = std::to_string(service.requests());
  manifest.config["cache_hits"] = std::to_string(service.cache_hits());
  manifest.config["computed"] = std::to_string(service.computed());
  manifest.config["coalesced"] = std::to_string(service.coalesced());
  manifest.config["rejected"] = std::to_string(service.rejected());
  const std::string path = obs::manifest_path_for(manifest.name);
  if (!path.empty() && !manifest.write_file(path)) {
    std::cerr << "jamelectd: cannot write manifest " << path << "\n";
  }
  std::cout << "jamelectd: served " << service.requests() << " requests ("
            << service.cache_hits() << " cache hits, " << service.computed()
            << " computed, " << service.coalesced() << " coalesced, "
            << service.rejected() << " rejected)" << std::endl;
  return 0;
}
