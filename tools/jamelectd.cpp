// jamelectd — the jamelect sweep daemon.
//
//   jamelectd [--host=127.0.0.1] [--port=7979] [--workers=2]
//             [--queue=64] [--cache-dir=DIR] [--heartbeat-ms=500]
//             [--cache-max-entries=0] [--cache-max-bytes=0]
//             [--max-trials=1000000] [--max-slots=10000000]
//             [--manifest=jamelectd] [--trace=PATH]
//             [--flight=PREFIX] [--flight-capacity=4096]
//
// Serves parameter sweeps over the newline-delimited JSON protocol and
// the HTTP/1.1 shim (docs/SERVICE.md). Results are memoized by manifest
// fingerprint (config + seed + git SHA) in memory and, when
// --cache-dir (or env JAMELECT_CACHE_DIR) is set, on disk — so a
// restarted daemon still answers repeated sweeps from cache.
//
// --port=0 binds an ephemeral port; the chosen port is printed on the
// "jamelectd listening on" line, which scripts/service_smoke.sh parses.
//
// Observability:
//  * --trace=PATH records every request's phase spans (admission,
//    queue_wait, compute incl. per-worker MC chunk spans, serialize,
//    respond) tagged with the request's trace id, plus thread-pool
//    task/idle spans, and writes one Chrome-trace JSON at exit.
//  * A flight recorder (bounded ring of recent spans, --flight-capacity)
//    is always on; SIGUSR1 dumps it to `<--flight prefix>-<utc>-<seq>
//    .ndjson` without stopping the daemon, and an abnormal drain (any
//    failed jobs at shutdown) dumps it automatically.
//
// SIGINT/SIGTERM drain gracefully: stop admitting, fail queued jobs,
// let running sweeps finish their current trial chunk (the Monte-Carlo
// drivers poll the same shutdown flag), flush the run manifest, exit 0.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/span.hpp"
#include "obs/trace_events.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "support/cli.hpp"
#include "support/shutdown.hpp"
#include "support/thread_pool.hpp"

namespace {

// SIGUSR1 => dump the flight recorder. The handler only sets a flag
// (async-signal-safe); the main loop does the I/O.
volatile std::sig_atomic_t g_dump_requested = 0;

void handle_sigusr1(int) { g_dump_requested = 1; }

bool install_sigusr1() {
  struct sigaction sa = {};
  sa.sa_handler = handle_sigusr1;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  return sigaction(SIGUSR1, &sa, nullptr) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jamelect;
  const Cli cli(argc, argv);

  service::ServiceConfig svc_cfg;
  svc_cfg.workers = cli.get_uint("workers", 2);
  svc_cfg.max_queue = cli.get_uint("queue", 64);
  const char* env_cache = std::getenv("JAMELECT_CACHE_DIR");
  svc_cfg.cache_dir =
      cli.get_string("cache-dir", env_cache != nullptr ? env_cache : "");
  // 0 = unbounded; with --cache-dir set, keys evicted by these bounds
  // are still served from the disk tier.
  svc_cfg.cache_max_entries = cli.get_uint("cache-max-entries", 0);
  svc_cfg.cache_max_bytes = cli.get_uint("cache-max-bytes", 0);
  svc_cfg.limits.max_trials = cli.get_uint("max-trials", 1'000'000);
  svc_cfg.limits.max_slots =
      cli.get_int("max-slots", svc_cfg.limits.max_slots);

  service::ServerConfig srv_cfg;
  srv_cfg.host = cli.get_string("host", "127.0.0.1");
  srv_cfg.port = static_cast<std::uint16_t>(cli.get_uint("port", 7979));
  srv_cfg.heartbeat_ms =
      static_cast<int>(cli.get_int("heartbeat-ms", srv_cfg.heartbeat_ms));

  obs::MetricsRegistry::global().set_enabled(true);
  install_shutdown_handlers();
  if (!install_sigusr1()) {
    std::cerr << "jamelectd: warning: cannot install SIGUSR1 handler\n";
  }

  // Flight recorder: always on — it is the post-hoc "what was the
  // daemon doing" story and costs one short lock per request phase.
  const std::string flight_prefix =
      cli.get_string("flight", "jamelectd-flight");
  obs::FlightRecorder flight(cli.get_uint("flight-capacity", 4096));
  svc_cfg.flight = &flight;

  // Chrome-trace recorder: opt-in (unbounded growth — meant for
  // bounded profiling sessions, not long-lived daemons).
  const std::string trace_path = cli.get_string("trace", "");
  obs::TraceEventRecorder recorder;
  obs::PoolProfObserver pool_obs(&recorder);
  if (!trace_path.empty()) {
    svc_cfg.recorder = &recorder;
    svc_cfg.runner.recorder = &recorder;
    // One attachment gives pool_task spans in the trace AND idle /
    // caller-wait scheduling phases in the profiler.
    global_pool().set_task_observer(&pool_obs);
  }

  service::SweepService service(svc_cfg);
  service::SocketServer server(service, srv_cfg);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "jamelectd: " << error << "\n";
    return 1;
  }
  std::cout << "jamelectd listening on " << srv_cfg.host << ":"
            << server.port() << " (workers=" << svc_cfg.workers
            << " queue=" << svc_cfg.max_queue << " cache="
            << (svc_cfg.cache_dir.empty() ? "memory" : svc_cfg.cache_dir)
            << ")" << std::endl;

  while (!shutdown_requested()) {
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      const std::string path = flight.dump(flight_prefix);
      std::cout << "jamelectd: SIGUSR1 flight dump "
                << (path.empty() ? "FAILED" : path) << std::endl;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "jamelectd: signal " << shutdown_signal()
            << ", draining" << std::endl;

  // Order matters: stopping the service resolves every job (queued ->
  // failed, running -> drained), which releases connections blocked in
  // wait(); only then can the server's connection count reach zero.
  const std::size_t queued_at_drain = service.queue_depth();
  service.stop();
  server.stop();
  if (!trace_path.empty()) global_pool().set_task_observer(nullptr);

  // Abnormal drain — jobs failed (or died queued): dump the flight ring
  // so the last moments are on disk next to the manifest.
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::global().aggregate();
  std::uint64_t failed = 0;
  if (const auto it = snap.counters.find("svc.failed");
      it != snap.counters.end()) {
    failed = it->second;
  }
  if (failed > 0 || queued_at_drain > 0) {
    const std::string path = flight.dump(flight_prefix);
    std::cout << "jamelectd: abnormal drain (" << failed << " failed, "
              << queued_at_drain << " queued), flight dump "
              << (path.empty() ? "FAILED" : path) << std::endl;
  }

  if (!trace_path.empty() && !recorder.write_file(trace_path)) {
    std::cerr << "jamelectd: cannot write trace " << trace_path << "\n";
  }

  obs::RunManifest manifest;
  manifest.name = cli.get_string("manifest", "jamelectd");
  manifest.config["host"] = srv_cfg.host;
  manifest.config["port"] = std::to_string(server.port());
  manifest.config["workers"] = std::to_string(svc_cfg.workers);
  manifest.config["queue"] = std::to_string(svc_cfg.max_queue);
  manifest.config["cache_dir"] = svc_cfg.cache_dir;
  manifest.config["cache_max_entries"] =
      std::to_string(svc_cfg.cache_max_entries);
  manifest.config["cache_max_bytes"] = std::to_string(svc_cfg.cache_max_bytes);
  manifest.config["cache_evictions"] =
      std::to_string(service.cache().evictions());
  manifest.config["requests"] = std::to_string(service.requests());
  manifest.config["cache_hits"] = std::to_string(service.cache_hits());
  manifest.config["computed"] = std::to_string(service.computed());
  manifest.config["coalesced"] = std::to_string(service.coalesced());
  manifest.config["rejected"] = std::to_string(service.rejected());
  // Request-lineage + timing rollup: the last trace id seen and the
  // cross-request sums of each request phase.
  const obs::TraceId last = service.last_trace();
  manifest.config["last_trace"] = last.valid() ? last.hex() : "";
  const service::SweepService::TimingTotals totals = service.timing_totals();
  manifest.config["timing_admission_us"] = std::to_string(totals.admission_us);
  manifest.config["timing_cache_probe_us"] =
      std::to_string(totals.cache_probe_us);
  manifest.config["timing_queue_us"] = std::to_string(totals.queue_us);
  manifest.config["timing_compute_us"] = std::to_string(totals.compute_us);
  manifest.config["timing_serialize_us"] =
      std::to_string(totals.serialize_us);
  manifest.config["timing_respond_us"] = std::to_string(totals.respond_us);
  manifest.config["flight_pushed"] = std::to_string(flight.ring().pushed());
  manifest.config["flight_overwritten"] =
      std::to_string(flight.ring().overwritten());
  const std::string path = obs::manifest_path_for(manifest.name);
  if (!path.empty() && !manifest.write_file(path)) {
    std::cerr << "jamelectd: cannot write manifest " << path << "\n";
  }
  std::cout << "jamelectd: served " << service.requests() << " requests ("
            << service.cache_hits() << " cache hits, " << service.computed()
            << " computed, " << service.coalesced() << " coalesced, "
            << service.rejected() << " rejected)" << std::endl;
  return 0;
}
