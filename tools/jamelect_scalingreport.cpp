// jamelect_scalingreport — thread-count scaling study of the parallel
// wide-batch Monte-Carlo engine, with a phase-attributed profile.
//
//   jamelect_scalingreport [--threads=1,2,4,8] [--n=1024] [--trials=512]
//                          [--batch=64] [--max-slots=32768] [--seed=23]
//                          [--eps=0.5] [--T=64] [--repeats=3]
//                          [--json=scaling_report.json]
//                          [--md=scaling_report.md]
//                          [--manifest=jamelect_scalingreport]
//
// The workload is bench_perf_engines' Perf_ParallelWideBatchEngine
// verbatim: LESK(eps) under a saturating adversary (T, eps), batched
// wide lanes, trials fanned out over a pinned thread pool. Per-trial
// outcomes are bit-identical at every width (the engines' contract),
// which this tool re-checks — so wall-clock differences are pure
// scheduling.
//
// For each thread count the tool runs two passes:
//   1. a timing pass (profiler OFF, min of --repeats) -> seconds,
//      slots/s, parallel efficiency T1 / (k * Tk);
//   2. a profiling pass (PhaseProfiler ON, PoolProfObserver attached)
//      -> per-phase time shares (rng / classify / cache_lookup /
//      lattice_update / merge / steal_wait / idle) and per-thread
//      SlotProbCache hit-rate variance.
// A closed-form least-squares Amdahl fit over the timing pass reports
// the serial fraction s: model Tk/T1 = s + (1-s)/k, i.e. with
// x_k = 1 - 1/k and y_k = Tk/T1 - 1/k, s = sum(x*y)/sum(x^2), clamped
// to [0, 1].
//
// NOTE: on a 1-core host every width > 1 measures oversubscription, not
// speedup — the report states measured efficiency and never asserts it.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/prof.hpp"
#include "protocols/lesk.hpp"
#include "service/json.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/montecarlo.hpp"
#include "support/cli.hpp"
#include "support/thread_pool.hpp"

namespace {

using jamelect::service::Json;
using Clock = std::chrono::steady_clock;

struct Workload {
  std::uint64_t n = 1024;
  std::size_t trials = 512;
  std::size_t batch = 64;
  std::int64_t max_slots = 1 << 15;
  std::uint64_t seed = 23;
  double eps = 0.5;
  std::int64_t T = 64;
};

struct PhaseShare {
  const char* name;
  std::int64_t ns;
  double share;  ///< of the summed engine+scheduling phase time
};

struct WidthResult {
  std::size_t threads = 1;
  double seconds = 0.0;       ///< min over repeats, profiler off
  double slots_per_sec = 0.0;
  double efficiency = 0.0;    ///< T1 / (k * Tk)
  std::vector<PhaseShare> phases;
  std::vector<double> cache_hit_rates;  ///< per worker thread
  double cache_hit_mean = 0.0;
  double cache_hit_stddev = 0.0;
  // Outcome fingerprint for the bit-identity check across widths.
  std::size_t successes = 0;
  double slots_mean = 0.0;
  std::int64_t total_slots = 0;
};

jamelect::McResult run_workload(const Workload& w, jamelect::ThreadPool* pool,
                                bool parallel) {
  jamelect::AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = w.T;
  spec.eps = w.eps;
  jamelect::McConfig config;
  config.trials = w.trials;
  config.seed = w.seed;
  config.max_slots = w.max_slots;
  config.parallel = parallel;
  config.batch = w.batch;
  config.batch_lanes = jamelect::BatchLaneMode::kWide;
  config.pool = pool;
  const double eps = w.eps;
  return run_aggregate_mc(
      [eps] { return std::make_unique<jamelect::Lesk>(eps); }, spec, w.n,
      config);
}

std::int64_t total_slots(const jamelect::McResult& res) {
  return static_cast<std::int64_t>(
      res.slots.mean * static_cast<double>(res.slots.count) + 0.5);
}

/// One thread-count measurement: timing pass then profiling pass.
WidthResult measure(const Workload& w, std::size_t threads, int repeats) {
  WidthResult out;
  out.threads = threads;
  // Width 1 = the in-caller sequential path; width k >= 2 pins a pool
  // of k - 1 workers (the caller is the k-th executor: ThreadPool
  // chunks are drained by workers AND the submitting thread).
  std::unique_ptr<jamelect::ThreadPool> pool;
  const bool parallel = threads >= 2;
  if (parallel) pool = std::make_unique<jamelect::ThreadPool>(threads - 1);

  auto& prof = jamelect::obs::PhaseProfiler::global();

  // Timing pass: profiler off, min of repeats.
  prof.set_enabled(false);
  double best = -1.0;
  for (int r = 0; r < std::max(1, repeats); ++r) {
    const auto t0 = Clock::now();
    const jamelect::McResult res = run_workload(w, pool.get(), parallel);
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (best < 0.0 || s < best) best = s;
    out.successes = res.successes;
    out.slots_mean = res.slots.mean;
    out.total_slots = total_slots(res);
  }
  out.seconds = best;
  out.slots_per_sec =
      best > 0.0 ? static_cast<double>(out.total_slots) / best : 0.0;

  // Profiling pass: phase attribution + per-thread cache hit rates.
  jamelect::obs::TraceEventRecorder* no_trace = nullptr;
  jamelect::obs::PoolProfObserver pool_obs(no_trace);
  if (pool) pool->set_task_observer(&pool_obs);
  prof.reset();
  prof.set_enabled(true);
  (void)run_workload(w, pool.get(), parallel);
  prof.set_enabled(false);
  if (pool) pool->set_task_observer(nullptr);

  const jamelect::obs::ProfSnapshot snap = prof.snapshot();
  using jamelect::obs::Phase;
  const Phase interesting[] = {
      Phase::kRng,         Phase::kClassify,  Phase::kCacheLookup,
      Phase::kLatticeUpdate, Phase::kMerge,   Phase::kStealWait,
      Phase::kIdle,
  };
  std::int64_t sum_ns = 0;
  for (const Phase p : interesting) {
    sum_ns += snap.total.ns[static_cast<std::size_t>(p)];
  }
  for (const Phase p : interesting) {
    const std::int64_t ns = snap.total.ns[static_cast<std::size_t>(p)];
    out.phases.push_back({jamelect::obs::phase_name(p), ns,
                          sum_ns > 0 ? static_cast<double>(ns) /
                                           static_cast<double>(sum_ns)
                                     : 0.0});
  }
  using jamelect::obs::ProfCounter;
  for (const auto& t : snap.threads) {
    const std::int64_t lookups =
        t.counters[static_cast<std::size_t>(ProfCounter::kCacheLookups)];
    if (lookups <= 0) continue;  // thread ran no engine chunks
    const std::int64_t hits =
        t.counters[static_cast<std::size_t>(ProfCounter::kCacheHits)];
    out.cache_hit_rates.push_back(static_cast<double>(hits) /
                                  static_cast<double>(lookups));
  }
  if (!out.cache_hit_rates.empty()) {
    double sum = 0.0;
    for (const double r : out.cache_hit_rates) sum += r;
    out.cache_hit_mean = sum / static_cast<double>(out.cache_hit_rates.size());
    double var = 0.0;
    for (const double r : out.cache_hit_rates) {
      var += (r - out.cache_hit_mean) * (r - out.cache_hit_mean);
    }
    out.cache_hit_stddev = std::sqrt(
        var / static_cast<double>(out.cache_hit_rates.size()));
  }
  return out;
}

/// Closed-form least-squares serial fraction (see file comment).
double amdahl_serial_fraction(const std::vector<WidthResult>& widths) {
  double t1 = -1.0;
  for (const auto& w : widths) {
    if (w.threads == 1) t1 = w.seconds;
  }
  if (t1 <= 0.0) return 1.0;
  double sxy = 0.0;
  double sxx = 0.0;
  for (const auto& w : widths) {
    if (w.threads <= 1) continue;
    const double k = static_cast<double>(w.threads);
    const double x = 1.0 - 1.0 / k;
    const double y = w.seconds / t1 - 1.0 / k;
    sxy += x * y;
    sxx += x * x;
  }
  if (sxx <= 0.0) return 1.0;
  return std::clamp(sxy / sxx, 0.0, 1.0);
}

std::vector<std::size_t> parse_threads(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? spec.size() - pos
                                                    : comma - pos);
    if (!tok.empty()) {
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v >= 1) out.push_back(static_cast<std::size_t>(v));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jamelect;
  const Cli cli(argc, argv);

  Workload w;
  w.n = cli.get_uint("n", w.n);
  w.trials = cli.get_uint("trials", w.trials);
  w.batch = cli.get_uint("batch", w.batch);
  w.max_slots = cli.get_int("max-slots", w.max_slots);
  w.seed = cli.get_uint("seed", w.seed);
  w.eps = cli.get_double("eps", w.eps);
  w.T = cli.get_int("T", w.T);
  const int repeats = static_cast<int>(cli.get_int("repeats", 3));
  const std::vector<std::size_t> threads =
      parse_threads(cli.get_string("threads", "1,2,4,8"));
  const std::string json_path = cli.get_string("json", "scaling_report.json");
  const std::string md_path = cli.get_string("md", "scaling_report.md");

  std::vector<WidthResult> widths;
  widths.reserve(threads.size());
  for (const std::size_t k : threads) {
    std::fprintf(stderr, "scalingreport: threads=%zu ...\n", k);
    widths.push_back(measure(w, k, repeats));
  }

  // Bit-identity across widths: same seed -> same outcomes everywhere.
  bool identical = true;
  for (const auto& wr : widths) {
    if (wr.successes != widths.front().successes ||
        wr.slots_mean != widths.front().slots_mean) {
      identical = false;
    }
  }

  double t1 = -1.0;
  for (const auto& wr : widths) {
    if (wr.threads == 1) t1 = wr.seconds;
  }
  for (auto& wr : widths) {
    wr.efficiency = (t1 > 0.0 && wr.seconds > 0.0)
                        ? t1 / (static_cast<double>(wr.threads) * wr.seconds)
                        : 0.0;
  }
  const double serial = amdahl_serial_fraction(widths);

  // JSON report.
  Json report;
  report.set_object();
  {
    Json wl;
    wl.set_object();
    wl.set("workload", "Perf_ParallelWideBatchEngine");
    wl.set("protocol", "lesk");
    wl.set("adversary", "saturating");
    wl.set("n", w.n);
    wl.set("trials", static_cast<std::uint64_t>(w.trials));
    wl.set("batch", static_cast<std::uint64_t>(w.batch));
    wl.set("max_slots", w.max_slots);
    wl.set("seed", w.seed);
    wl.set("eps", w.eps);
    wl.set("T", w.T);
    wl.set("repeats", static_cast<std::int64_t>(repeats));
    report.set("workload", std::move(wl));
  }
  {
    Json arr;
    arr.set_array();
    for (const auto& wr : widths) {
      Json e;
      e.set_object();
      e.set("threads", static_cast<std::uint64_t>(wr.threads));
      e.set("seconds", wr.seconds);
      e.set("slots_per_sec", wr.slots_per_sec);
      e.set("efficiency", wr.efficiency);
      Json phases;
      phases.set_object();
      for (const auto& p : wr.phases) {
        Json pe;
        pe.set_object();
        pe.set("ns", p.ns);
        pe.set("share", p.share);
        phases.set(p.name, std::move(pe));
      }
      e.set("phases", std::move(phases));
      Json cache;
      cache.set_object();
      Json rates;
      rates.set_array();
      for (const double r : wr.cache_hit_rates) rates.push_back(r);
      cache.set("per_thread_hit_rate", std::move(rates));
      cache.set("hit_rate_mean", wr.cache_hit_mean);
      cache.set("hit_rate_stddev", wr.cache_hit_stddev);
      e.set("slot_prob_cache", std::move(cache));
      e.set("successes", static_cast<std::uint64_t>(wr.successes));
      e.set("slots_mean", wr.slots_mean);
      arr.push_back(std::move(e));
    }
    report.set("thread_counts", std::move(arr));
  }
  {
    Json fit;
    fit.set_object();
    fit.set("model", "Tk/T1 = s + (1-s)/k");
    fit.set("serial_fraction", serial);
    report.set("amdahl", std::move(fit));
  }
  report.set("outcomes_bit_identical", identical);
  // When the build compiled observability out (Release without
  // -DJAMELECT_OBS=ON), the timing columns are still valid but every
  // phase share reads zero — flag it so consumers don't misread that
  // as "no idle/steal time".
  report.set("profiler_compiled_in", obs::kObsCompiledIn);

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    f << report.dump() << "\n";
    if (!f) std::cerr << "scalingreport: cannot write " << json_path << "\n";
  }

  // Markdown report.
  if (!md_path.empty()) {
    std::ofstream f(md_path);
    f << "# Wide-batch engine scaling report\n\n";
    if (!obs::kObsCompiledIn) {
      f << "> **Note**: this binary was built without observability "
           "(`-DJAMELECT_OBS=ON`); phase shares and cache hit rates read "
           "zero. Timing and efficiency columns are unaffected.\n\n";
    }
    f << ""
      << "Workload: `Perf_ParallelWideBatchEngine` — LESK(eps=" << w.eps
      << ") vs saturating(T=" << w.T << "), n=" << w.n
      << ", trials=" << w.trials << ", batch=" << w.batch
      << ", max_slots=" << w.max_slots << ", seed=" << w.seed << ".\n\n"
      << "Amdahl fit `Tk/T1 = s + (1-s)/k`: **serial fraction s = "
      << serial << "**.\n\n"
      << "Per-trial outcomes bit-identical across widths: "
      << (identical ? "yes" : "**NO — engine contract violation**")
      << ".\n\n"
      << "| threads | time (s) | slots/s | efficiency | steal_wait | idle |"
         " merge | cache-hit σ |\n"
      << "|---:|---:|---:|---:|---:|---:|---:|---:|\n";
    for (const auto& wr : widths) {
      double steal = 0.0;
      double idle = 0.0;
      double merge = 0.0;
      for (const auto& p : wr.phases) {
        if (std::string(p.name) == "steal_wait") steal = p.share;
        if (std::string(p.name) == "idle") idle = p.share;
        if (std::string(p.name) == "merge") merge = p.share;
      }
      char line[256];
      std::snprintf(line, sizeof line,
                    "| %zu | %.4f | %.3g | %.3f | %.1f%% | %.1f%% | %.1f%% |"
                    " %.4f |\n",
                    wr.threads, wr.seconds, wr.slots_per_sec, wr.efficiency,
                    steal * 100.0, idle * 100.0, merge * 100.0,
                    wr.cache_hit_stddev);
      f << line;
    }
    f << "\nPhase shares are fractions of summed engine+scheduling phase "
         "time from the profiling pass (see docs/OBSERVABILITY.md). On "
         "hosts with fewer cores than threads the efficiency column "
         "measures oversubscription, not speedup.\n";
    if (!f) std::cerr << "scalingreport: cannot write " << md_path << "\n";
  }

  std::printf("scalingreport: serial_fraction=%.4f, outcomes %s\n", serial,
              identical ? "bit-identical" : "DIVERGED");
  for (const auto& wr : widths) {
    std::printf("  threads=%zu  %.4fs  %.3g slots/s  eff=%.3f\n", wr.threads,
                wr.seconds, wr.slots_per_sec, wr.efficiency);
  }

  obs::RunManifest manifest;
  manifest.name = cli.get_string("manifest", "jamelect_scalingreport");
  manifest.seed = w.seed;
  manifest.include_metrics = false;
  manifest.config["n"] = std::to_string(w.n);
  manifest.config["trials"] = std::to_string(w.trials);
  manifest.config["batch"] = std::to_string(w.batch);
  manifest.config["max_slots"] = std::to_string(w.max_slots);
  manifest.config["threads"] = cli.get_string("threads", "1,2,4,8");
  manifest.config["repeats"] = std::to_string(repeats);
  manifest.config["serial_fraction"] = obs::canonical_number(serial);
  // Built from a char, not a `cond ? "1" : "0"` literal pick: GCC 12's
  // -Wrestrict false-positives on the latter at -O2 (cf. PR105329).
  manifest.config["outcomes_bit_identical"] = std::string(1, identical ? '1' : '0');
  const std::string mpath = obs::manifest_path_for(manifest.name);
  if (!mpath.empty()) (void)manifest.write_file(mpath);

  return identical ? 0 : 3;
}
