// jamelect_loadgen — replay a mixed sweep trace against jamelectd.
//
//   jamelect_loadgen --port=PORT [--host=127.0.0.1]
//                    [--requests=10000] [--concurrency=8]
//                    [--configs=16] [--hot-frac=0.9]
//                    [--n=256] [--trials=32] [--eps=0.5] [--T=32]
//                    [--adversary=none] [--max-slots=20000] [--batch=64]
//                    [--seed=1] [--rate=0] [--min-hit-rate=-1]
//                    [--manifest=jamelect_loadgen]
//
// The trace is deterministic in --seed: each request draws one of
// --configs distinct sweep configs (distinguished by their RNG seed
// field), with probability --hot-frac of drawing config 0 — a skewed
// mix where the hot config becomes a cache hit after its first
// computation, so the steady-state hit rate approaches the skew. Each
// of --concurrency threads replays its slice over one persistent
// line-protocol connection (closed loop; --rate=R paces each thread at
// R requests/s, open loop). 429 rejections are counted and retried
// after a backoff so the delivered request count stays fixed.
//
// Output: per-category latency percentiles (cache hit / computed miss /
// coalesced), overall p50/p90/p99, cache hit rate, throughput — as a
// human-readable block plus one machine-readable `loadgen_summary`
// JSON line and a run manifest.
//
// Exit codes: 0 ok; 1 transport/protocol failure;
//             2 hit rate below --min-hit-rate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/span.hpp"
#include "service/json.hpp"
#include "service/net.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct TraceConfig {
  std::string host;
  std::uint16_t port = 0;
  std::uint64_t requests = 10'000;
  std::size_t concurrency = 8;
  std::uint64_t configs = 16;
  double hot_frac = 0.9;
  std::uint64_t n = 256;
  std::uint64_t trials = 32;
  double eps = 0.5;
  std::int64_t T = 32;
  std::string adversary = "none";
  std::int64_t max_slots = 20'000;
  std::uint64_t batch = 64;
  std::uint64_t seed = 1;
  double rate = 0.0;  ///< per-thread requests/s; 0 = closed loop
};

struct WorkerStats {
  std::vector<double> hit_us;
  std::vector<double> miss_us;
  std::vector<double> coalesced_us;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  /// Responses whose echoed trace id differs from the one sent (the
  /// daemon must echo request lineage verbatim; any mismatch is a bug).
  std::uint64_t trace_mismatches = 0;
  std::string first_error;
};

std::string sweep_line(const TraceConfig& trace, std::uint64_t config_index,
                       const jamelect::obs::TraceId& trace_id) {
  using jamelect::service::Json;
  Json params;
  params.set_object();
  params.set("protocol", "lesk");
  params.set("engine", "aggregate");
  params.set("n", trace.n);
  params.set("eps", trace.eps);
  params.set("adversary", trace.adversary);
  params.set("T", trace.T);
  params.set("trials", trace.trials);
  // The per-config seed is the only varying field: `configs` distinct
  // cache keys, all equally expensive to compute.
  params.set("seed", trace.seed * 1'000'003 + config_index);
  params.set("max_slots", trace.max_slots);
  params.set("batch", trace.batch);
  Json req;
  req.set_object();
  req.set("op", "sweep");
  req.set("params", std::move(params));
  // Envelope-level (NOT inside params): the trace id is request
  // lineage, never part of the cache key.
  req.set("trace", trace_id.hex());
  req.set("wait", true);
  return req.dump() + "\n";
}

/// Replays `count` requests over one persistent connection.
void run_worker(const TraceConfig& trace, std::uint64_t count,
                std::uint64_t worker_index, WorkerStats& stats) {
  using jamelect::service::Json;
  std::string error;
  auto sock = jamelect::service::tcp_connect(trace.host, trace.port, &error);
  if (!sock.valid()) {
    stats.errors += count;
    stats.first_error = error;
    return;
  }
  jamelect::service::LineReader reader;
  std::mt19937_64 rng(trace.seed ^ (0x9e3779b97f4a7c15ULL * (worker_index + 1)));
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const auto pace = trace.rate > 0.0
                        ? std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(1.0 / trace.rate))
                        : Clock::duration::zero();
  auto next_send = Clock::now();

  for (std::uint64_t i = 0; i < count; ++i) {
    if (pace != Clock::duration::zero()) {
      std::this_thread::sleep_until(next_send);
      next_send += pace;
    }
    const std::uint64_t config_index =
        (trace.configs <= 1 || unit(rng) < trace.hot_frac)
            ? 0
            : 1 + rng() % (trace.configs - 1);
    // Deterministic per-request lineage: (seed, worker, request index)
    // always mint the same id, so a replayed trace correlates across
    // daemon-side dumps too.
    const jamelect::obs::TraceId trace_id = jamelect::obs::TraceId::derive(
        trace.seed ^ (0xace1ull * (worker_index + 1)), i);
    const std::string line = sweep_line(trace, config_index, trace_id);

    for (int attempt = 0;; ++attempt) {
      const auto t0 = Clock::now();
      if (!jamelect::service::send_all(sock.fd(), line)) {
        stats.errors += 1;
        if (stats.first_error.empty()) stats.first_error = "send failed";
        return;
      }
      // Read lines until this request resolves (heartbeats in between).
      std::string cache;
      bool resolved = false;
      bool rejected = false;
      while (!resolved) {
        auto resp = reader.read_line(sock.fd(), 60'000);
        if (!resp.has_value()) {
          stats.errors += 1;
          if (stats.first_error.empty()) {
            stats.first_error = reader.timed_out() ? "response timeout"
                                                   : "connection closed";
          }
          return;
        }
        const auto doc = Json::parse(*resp);
        if (!doc.has_value()) continue;
        const Json* type = doc->find("type");
        const std::string kind = type != nullptr ? type->as_string() : "";
        if (kind == "ack") {
          const Json* c = doc->find("cache");
          if (c != nullptr) cache = c->as_string();
        } else if (kind == "result") {
          if (cache.empty()) {
            const Json* c = doc->find("cache");
            if (c != nullptr) cache = c->as_string();
          }
          // The daemon must echo the request's trace id verbatim.
          const Json* echoed = doc->find("trace");
          if (echoed == nullptr || echoed->as_string() != trace_id.hex()) {
            stats.trace_mismatches += 1;
            if (stats.first_error.empty()) {
              stats.first_error =
                  "trace echo mismatch (sent " + trace_id.hex() + ", got " +
                  (echoed != nullptr ? echoed->as_string() : "<none>") + ")";
            }
          }
          resolved = true;
        } else if (kind == "error") {
          const Json* code = doc->find("code");
          if (code != nullptr && code->as_int() == 429) {
            rejected = true;
            resolved = true;
          } else {
            stats.errors += 1;
            if (stats.first_error.empty()) {
              const Json* msg = doc->find("error");
              stats.first_error = msg != nullptr ? msg->as_string() : *resp;
            }
            resolved = true;
            cache.clear();
          }
        }
        // heartbeats fall through and keep the loop waiting
      }
      if (rejected) {
        stats.rejected += 1;
        if (attempt < 50) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2 << std::min(attempt, 5)));
          continue;  // retry so the delivered count stays fixed
        }
        break;  // give up on this request; already counted as rejected
      }
      const double us = std::chrono::duration<double, std::micro>(
                            Clock::now() - t0)
                            .count();
      if (cache == "hit") {
        stats.hit_us.push_back(us);
      } else if (cache == "coalesced") {
        stats.coalesced_us.push_back(us);
      } else if (!cache.empty()) {
        stats.miss_us.push_back(us);
      }
      break;
    }
  }
}

jamelect::Summary summary_of(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  return jamelect::summarize(std::span<const double>(v));
}

void print_lat(const char* label, const jamelect::Summary& s) {
  std::printf("  %-10s count=%-7zu p50=%.0fus p95=%.0fus p99=%.0fus max=%.0fus\n",
              label, s.count, s.median, s.p95, s.p99, s.max);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jamelect;
  const Cli cli(argc, argv);

  TraceConfig trace;
  trace.host = cli.get_string("host", "127.0.0.1");
  trace.port = static_cast<std::uint16_t>(cli.get_uint("port", 7979));
  trace.requests = cli.get_uint("requests", trace.requests);
  trace.concurrency = cli.get_uint("concurrency", trace.concurrency);
  trace.configs = std::max<std::uint64_t>(1, cli.get_uint("configs", trace.configs));
  trace.hot_frac = cli.get_double("hot-frac", trace.hot_frac);
  trace.n = cli.get_uint("n", trace.n);
  trace.trials = cli.get_uint("trials", trace.trials);
  trace.eps = cli.get_double("eps", trace.eps);
  trace.T = cli.get_int("T", trace.T);
  trace.adversary = cli.get_string("adversary", trace.adversary);
  trace.max_slots = cli.get_int("max-slots", trace.max_slots);
  trace.batch = cli.get_uint("batch", trace.batch);
  trace.seed = cli.get_uint("seed", trace.seed);
  trace.rate = cli.get_double("rate", trace.rate);
  const double min_hit_rate = cli.get_double("min-hit-rate", -1.0);
  if (trace.concurrency == 0) trace.concurrency = 1;

  std::vector<WorkerStats> stats(trace.concurrency);
  std::vector<std::thread> workers;
  workers.reserve(trace.concurrency);
  const auto t0 = Clock::now();
  for (std::size_t w = 0; w < trace.concurrency; ++w) {
    const std::uint64_t share = trace.requests / trace.concurrency +
                                (w < trace.requests % trace.concurrency ? 1 : 0);
    workers.emplace_back(run_worker, std::cref(trace), share, w,
                         std::ref(stats[w]));
  }
  for (auto& t : workers) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  WorkerStats total;
  for (const auto& s : stats) {
    total.hit_us.insert(total.hit_us.end(), s.hit_us.begin(), s.hit_us.end());
    total.miss_us.insert(total.miss_us.end(), s.miss_us.begin(),
                         s.miss_us.end());
    total.coalesced_us.insert(total.coalesced_us.end(),
                              s.coalesced_us.begin(), s.coalesced_us.end());
    total.rejected += s.rejected;
    total.errors += s.errors;
    total.trace_mismatches += s.trace_mismatches;
    if (total.first_error.empty()) total.first_error = s.first_error;
  }
  const std::uint64_t resolved = total.hit_us.size() + total.miss_us.size() +
                                 total.coalesced_us.size();
  const double hit_rate =
      resolved > 0
          ? static_cast<double>(total.hit_us.size() + total.coalesced_us.size()) /
                static_cast<double>(resolved)
          : 0.0;

  std::vector<double> all;
  all.reserve(resolved);
  all.insert(all.end(), total.hit_us.begin(), total.hit_us.end());
  all.insert(all.end(), total.miss_us.begin(), total.miss_us.end());
  all.insert(all.end(), total.coalesced_us.begin(), total.coalesced_us.end());
  const Summary s_all = summary_of(all);
  const Summary s_hit = summary_of(total.hit_us);
  const Summary s_miss = summary_of(total.miss_us);
  const Summary s_coal = summary_of(total.coalesced_us);
  const double p90 =
      all.empty() ? 0.0 : quantile_sorted(std::span<const double>(all), 0.90);

  std::printf("loadgen: %llu requests in %.2fs (%.0f req/s), hit rate %.3f\n",
              static_cast<unsigned long long>(resolved), elapsed_s,
              elapsed_s > 0 ? static_cast<double>(resolved) / elapsed_s : 0.0,
              hit_rate);
  print_lat("all", s_all);
  std::printf("  %-10s p90=%.0fus\n", "all", p90);
  print_lat("hit", s_hit);
  print_lat("miss", s_miss);
  print_lat("coalesced", s_coal);
  if (total.rejected > 0) {
    std::printf("  rejected (429, retried): %llu\n",
                static_cast<unsigned long long>(total.rejected));
  }
  if (total.errors > 0) {
    std::printf("  ERRORS: %llu (first: %s)\n",
                static_cast<unsigned long long>(total.errors),
                total.first_error.c_str());
  }
  if (total.trace_mismatches > 0) {
    std::printf("  TRACE MISMATCHES: %llu (first: %s)\n",
                static_cast<unsigned long long>(total.trace_mismatches),
                total.first_error.c_str());
  }

  {
    using service::Json;
    Json out;
    out.set_object();
    out.set("requests", resolved);
    out.set("hits", static_cast<std::uint64_t>(total.hit_us.size()));
    out.set("misses", static_cast<std::uint64_t>(total.miss_us.size()));
    out.set("coalesced", static_cast<std::uint64_t>(total.coalesced_us.size()));
    out.set("rejected", total.rejected);
    out.set("errors", total.errors);
    out.set("trace_mismatches", total.trace_mismatches);
    out.set("hit_rate", hit_rate);
    out.set("elapsed_s", elapsed_s);
    out.set("rps", elapsed_s > 0
                       ? static_cast<double>(resolved) / elapsed_s
                       : 0.0);
    out.set("p50_us", s_all.median);
    out.set("p90_us", p90);
    out.set("p99_us", s_all.p99);
    out.set("hit_p50_us", s_hit.median);
    out.set("miss_p50_us", s_miss.median);
    std::printf("loadgen_summary %s\n", out.dump().c_str());
  }

  obs::RunManifest manifest;
  manifest.name = cli.get_string("manifest", "jamelect_loadgen");
  manifest.seed = trace.seed;
  manifest.include_metrics = false;
  manifest.config["host"] = trace.host;
  manifest.config["port"] = std::to_string(trace.port);
  manifest.config["requests"] = std::to_string(trace.requests);
  manifest.config["concurrency"] = std::to_string(trace.concurrency);
  manifest.config["configs"] = std::to_string(trace.configs);
  manifest.config["hot_frac"] = obs::canonical_number(trace.hot_frac);
  manifest.config["rate"] = obs::canonical_number(trace.rate);
  manifest.config["resolved"] = std::to_string(resolved);
  manifest.config["hit_rate"] = obs::canonical_number(hit_rate);
  manifest.config["p50_us"] = obs::canonical_number(s_all.median);
  manifest.config["p99_us"] = obs::canonical_number(s_all.p99);
  const std::string path = obs::manifest_path_for(manifest.name);
  if (!path.empty()) (void)manifest.write_file(path);

  if (total.errors > 0 || total.trace_mismatches > 0) return 1;
  if (min_hit_rate >= 0.0 && hit_rate < min_hit_rate) {
    std::fprintf(stderr, "loadgen: hit rate %.3f below threshold %.3f\n",
                 hit_rate, min_hit_rate);
    return 2;
  }
  return 0;
}
