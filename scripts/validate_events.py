#!/usr/bin/env python3
"""Validate an NDJSON telemetry stream against docs/event_schema.json.

Usage:
    scripts/validate_events.py events.ndjson [...]
    some_producer | scripts/validate_events.py -

Stdlib only (no jsonschema dependency): implements the subset of JSON
Schema the event schema actually uses — type, enum, const, required,
properties, minimum, pattern, and if/then inside allOf. Exits non-zero
on the first malformed line, naming the line number and the failed
check.
"""

import json
import pathlib
import re
import sys

SCHEMA_PATH = pathlib.Path(__file__).resolve().parent.parent / "docs" / "event_schema.json"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def _check_type(value, expected):
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        if name == "number":
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return True
        elif name == "integer":
            if isinstance(value, int) and not isinstance(value, bool):
                return True
        else:
            if isinstance(value, _TYPES[name]):
                return True
    return False


def validate(value, schema, path="$"):
    """Returns a list of error strings (empty if valid)."""
    errors = []
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']}")
    if "type" in schema and not _check_type(value, schema["type"]):
        errors.append(f"{path}: expected type {schema['type']}, got {type(value).__name__}")
    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if "pattern" in schema and isinstance(value, str):
        if not re.search(schema["pattern"], value):
            errors.append(f"{path}: {value!r} does not match pattern {schema['pattern']!r}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                errors.extend(validate(value[key], sub, f"{path}.{key}"))
    for sub in schema.get("allOf", []):
        if "if" in sub:
            if not validate(value, sub["if"], path):
                if "then" in sub:
                    errors.extend(validate(value, sub["then"], path))
            elif "else" in sub:
                errors.extend(validate(value, sub["else"], path))
        else:
            errors.extend(validate(value, sub, path))
    return errors


def validate_stream(lines, source):
    count = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"{source}:{lineno}: not valid JSON: {exc}", file=sys.stderr)
            return count, False
        errs = validate(obj, SCHEMA)
        if errs:
            for err in errs:
                print(f"{source}:{lineno}: {err}", file=sys.stderr)
            return count, False
        count += 1
    return count, True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    total = 0
    for arg in argv[1:]:
        if arg == "-":
            count, ok = validate_stream(sys.stdin, "<stdin>")
        else:
            with open(arg, encoding="utf-8") as fh:
                count, ok = validate_stream(fh, arg)
        if not ok:
            return 1
        total += count
    print(f"OK: {total} events valid against {SCHEMA_PATH.name}")
    if total == 0:
        print("error: stream contained no events", file=sys.stderr)
        return 1
    return 0


SCHEMA = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))

if __name__ == "__main__":
    sys.exit(main(sys.argv))
