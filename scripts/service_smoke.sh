#!/usr/bin/env bash
# Sweep-service smoke test (CI: the service job; also runnable locally).
#
#   scripts/service_smoke.sh [build-dir]
#
# Exercises the full daemon lifecycle:
#   1. start jamelectd on an ephemeral port, disk cache in a temp dir;
#   2. replay a mixed loadgen trace (hot-config skew), asserting the
#      cache actually hits;
#   3. repeat the trace against the warm disk cache after a restart;
#   4. SIGTERM the daemon mid-sweep and assert it drains and exits 0.
set -eu

BUILD_DIR="${1:-build}"
DAEMON="$BUILD_DIR/tools/jamelectd"
LOADGEN="$BUILD_DIR/tools/jamelect_loadgen"
[ -x "$DAEMON" ] || { echo "missing $DAEMON (build first)"; exit 1; }
[ -x "$LOADGEN" ] || { echo "missing $LOADGEN (build first)"; exit 1; }

WORK=$(mktemp -d)
LOG="$WORK/jamelectd.log"
export JAMELECT_MANIFEST_DIR="$WORK"

cleanup() {
  [ -n "${DPID:-}" ] && kill "$DPID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
  "$DAEMON" --port=0 --workers=4 --cache-dir="$WORK/cache" > "$LOG" 2>&1 &
  DPID=$!
  # The listening line carries the ephemeral port; wait for it.
  for _ in $(seq 1 50); do
    PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$LOG")
    [ -n "$PORT" ] && return 0
    kill -0 "$DPID" 2>/dev/null || { cat "$LOG"; echo "daemon died"; exit 1; }
    sleep 0.1
  done
  cat "$LOG"; echo "daemon never reported its port"; exit 1
}

echo "== cold trace (computes, then hits)"
start_daemon
"$LOADGEN" --port="$PORT" --requests=10000 --concurrency=8 --configs=16 \
  --hot-frac=0.9 --trials=32 --max-slots=20000 --min-hit-rate=0.5 \
  --manifest=loadgen_cold

echo "== warm restart (disk cache only, hit rate ~1.0)"
kill -TERM "$DPID"; wait "$DPID"
start_daemon
"$LOADGEN" --port="$PORT" --requests=2000 --concurrency=8 --configs=16 \
  --hot-frac=0.9 --trials=32 --max-slots=20000 --min-hit-rate=0.99 \
  --manifest=loadgen_warm

echo "== kill mid-sweep drains and exits 0"
# A heavy sweep (fire-and-forget) occupies a worker, then SIGTERM lands
# while it runs; graceful drain must still end with exit status 0.
python3 - "$PORT" <<'PYEOF'
import json, socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])))
req = {"op": "sweep", "wait": False,
       "params": {"n": 4096, "trials": 500000, "seed": 424242,
                  "adversary": "saturating", "T": 512,
                  "max_slots": 1000000}}
s.sendall((json.dumps(req) + "\n").encode())
line = s.makefile().readline()
resp = json.loads(line)
assert resp.get("type") == "ack", line
PYEOF
sleep 0.3
kill -TERM "$DPID"
RC=0; wait "$DPID" || RC=$?
if [ "$RC" -ne 0 ]; then
  cat "$LOG"; echo "daemon exited $RC after SIGTERM mid-sweep"; exit 1
fi
grep -q "draining" "$LOG" || { cat "$LOG"; echo "no drain message"; exit 1; }
[ -f "$WORK/jamelectd.manifest.json" ] || {
  echo "daemon manifest not flushed on shutdown"; exit 1; }
DPID=""

echo "service smoke OK"
