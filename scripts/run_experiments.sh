#!/usr/bin/env sh
# Regenerates every experiment series (EXPERIMENTS.md) from a fresh
# build. Usage:
#   scripts/run_experiments.sh [build-dir] [out-dir]
# Environment: JAMELECT_BENCH_TRIALS to raise trial counts.
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-experiment-results}"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

mkdir -p "$OUT_DIR"
# Run manifests (provenance: config, seed, git SHA, metric rollup) land
# next to the series they describe.
JAMELECT_MANIFEST_DIR="$OUT_DIR"
export JAMELECT_MANIFEST_DIR
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "== $name"
  # Write to the file first, then echo it: a pipeline into tee would
  # report tee's exit status and let a crashing bench pass silently.
  "$b" --benchmark_format=console > "$OUT_DIR/$name.txt"
  cat "$OUT_DIR/$name.txt"
  # Keep stderr visible — hiding it used to mask failures; set -e plus
  # the un-redirected exit status now abort the sweep on any error.
  "$b" --benchmark_format=csv > "$OUT_DIR/$name.csv"
done
echo "results in $OUT_DIR/"
