#!/usr/bin/env sh
# Regenerates every experiment series (EXPERIMENTS.md) from a fresh
# build. Usage:
#   scripts/run_experiments.sh [build-dir] [out-dir] [--max-fallback-share X]
# Environment: JAMELECT_BENCH_TRIALS to raise trial counts.
#
# --max-fallback-share X: fail (exit 1) when more than fraction X of the
# sweep's batched work fell off the batch engine onto the sequential
# path (share = fallback runs / (fallback runs + batched chunks), from
# the manifest rollup below). Without the flag the script only warns:
# local iteration stays unblocked, while CI passes --max-fallback-share 0
# — every built-in adversary policy and protocol kernel has a batch
# engine, so any fallback there is a routing regression.
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-experiment-results}"
MAX_FALLBACK_SHARE=""
if [ "${3:-}" = "--max-fallback-share" ]; then
  MAX_FALLBACK_SHARE="${4:?--max-fallback-share needs a value}"
fi

# JAMELECT_OBS=ON: the default RelWithDebInfo build compiles the
# metric macros out (NDEBUG), which left every manifest's counter
# rollup empty — the fallback gate below never had anything to gate.
cmake -B "$BUILD_DIR" -G Ninja -DJAMELECT_OBS=ON
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

mkdir -p "$OUT_DIR"
# Run manifests (provenance: config, seed, git SHA, metric rollup) land
# next to the series they describe.
JAMELECT_MANIFEST_DIR="$OUT_DIR"
export JAMELECT_MANIFEST_DIR
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "== $name"
  # Write to the file first, then echo it: a pipeline into tee would
  # report tee's exit status and let a crashing bench pass silently.
  "$b" --benchmark_format=console > "$OUT_DIR/$name.txt"
  cat "$OUT_DIR/$name.txt"
  # Keep stderr visible — hiding it used to mask failures; set -e plus
  # the un-redirected exit status now abort the sweep on any error.
  # JSON, not CSV: the CSV reporter aborts when benches carry different
  # counter sets (sequential baselines have no "batch" counter), and
  # nothing consumed the CSVs anyway.
  "$b" --benchmark_format=json > "$OUT_DIR/$name.json"
done
# Aggregate batch-kernel counters across every run manifest: how much
# of the sweep ran on the wide (SIMD) kernel vs the scalar path, and how
# often a config fell back off the batch engine entirely — broken down
# by the reason-labeled mc.batch_fallback.* partition. A sudden jump in
# fallbacks or scalar share is a perf regression even when wall-clock
# noise hides it; the optional --max-fallback-share gate turns that
# signal into a hard failure (CI passes 0).
python3 - "$OUT_DIR" "${MAX_FALLBACK_SHARE:-}" <<'PYEOF'
import glob, json, os, sys

out_dir = sys.argv[1]
max_share = float(sys.argv[2]) if len(sys.argv) > 2 and sys.argv[2] else None
totals = {"mc.batch_fallbacks": 0,
          "mc.batch_fallback.protocol": 0,
          "mc.batch_fallback.observer": 0,
          "mc.batch_fallback.adversary": 0,
          "mc.batch_fallback.cohort": 0,
          "mc.batch_wide_slots": 0,
          "mc.batch_scalar_slots": 0,
          "engine.batch.aggregate_chunks": 0,
          "engine.batch.hybrid_chunks": 0,
          "engine.batch.station_chunks": 0,
          "engine.batch.cohort_chunks": 0,
          "binom.regime.loop": 0,
          "binom.regime.inversion": 0,
          "binom.regime.btpe": 0}
manifests = sorted(glob.glob(os.path.join(out_dir, "*.manifest.json")))
for path in manifests:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"warning: skipping {path}: {e}", file=sys.stderr)
        continue
    counters = doc.get("metrics", {}).get("counters", {})
    for key in totals:
        totals[key] += int(counters.get(key, 0))

wide = totals["mc.batch_wide_slots"]
scalar = totals["mc.batch_scalar_slots"]
slots = wide + scalar
fallbacks = totals["mc.batch_fallbacks"]
chunks = (totals["engine.batch.aggregate_chunks"] +
          totals["engine.batch.hybrid_chunks"] +
          totals["engine.batch.station_chunks"] +
          totals["engine.batch.cohort_chunks"])
print(f"== batch kernel rollup ({len(manifests)} manifests)")
print(f"   mc.batch_fallbacks            {fallbacks}")
print(f"     .protocol                   {totals['mc.batch_fallback.protocol']}")
print(f"     .observer                   {totals['mc.batch_fallback.observer']}")
print(f"     .adversary                  {totals['mc.batch_fallback.adversary']}")
print(f"     .cohort                     {totals['mc.batch_fallback.cohort']}")
print(f"   batched chunks                {chunks}")
print(f"   mc.batch_wide_slots           {wide}")
print(f"   mc.batch_scalar_slots         {scalar}")
if slots:
    print(f"   wide share                    {wide / slots:.1%}")
regimes = (totals["binom.regime.loop"] + totals["binom.regime.inversion"] +
           totals["binom.regime.btpe"])
if regimes:
    print(f"   binom.regime.loop             {totals['binom.regime.loop']}")
    print(f"   binom.regime.inversion        {totals['binom.regime.inversion']}")
    print(f"   binom.regime.btpe             {totals['binom.regime.btpe']}")
# Fallback share: whole runs that dropped to the sequential path vs
# chunks that actually ran batched. Denominator of 0 means the sweep
# never engaged the batch engine at all — nothing to gate on.
if fallbacks + chunks:
    share = fallbacks / (fallbacks + chunks)
    print(f"   fallback share                {share:.1%}")
    if max_share is not None and share > max_share:
        print(f"error: fallback share {share:.4f} exceeds "
              f"--max-fallback-share {max_share}", file=sys.stderr)
        sys.exit(1)
    if max_share is None and fallbacks:
        print(f"warning: {fallbacks} batch fallback(s); rerun with "
              f"--max-fallback-share to gate", file=sys.stderr)
PYEOF
echo "results in $OUT_DIR/"
