#!/usr/bin/env sh
# Regenerates every experiment series (EXPERIMENTS.md) from a fresh
# build. Usage:
#   scripts/run_experiments.sh [build-dir] [out-dir]
# Environment: JAMELECT_BENCH_TRIALS to raise trial counts.
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-experiment-results}"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

mkdir -p "$OUT_DIR"
# Run manifests (provenance: config, seed, git SHA, metric rollup) land
# next to the series they describe.
JAMELECT_MANIFEST_DIR="$OUT_DIR"
export JAMELECT_MANIFEST_DIR
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "== $name"
  # Write to the file first, then echo it: a pipeline into tee would
  # report tee's exit status and let a crashing bench pass silently.
  "$b" --benchmark_format=console > "$OUT_DIR/$name.txt"
  cat "$OUT_DIR/$name.txt"
  # Keep stderr visible — hiding it used to mask failures; set -e plus
  # the un-redirected exit status now abort the sweep on any error.
  "$b" --benchmark_format=csv > "$OUT_DIR/$name.csv"
done
# Aggregate batch-kernel counters across every run manifest: how much
# of the sweep ran on the wide (SIMD) kernel vs the scalar path, and how
# often a config fell back off the batch engine entirely. A sudden jump
# in fallbacks or scalar share is a perf regression even when wall-clock
# noise hides it.
python3 - "$OUT_DIR" <<'PYEOF'
import glob, json, os, sys

out_dir = sys.argv[1]
totals = {"mc.batch_fallbacks": 0, "mc.batch_wide_slots": 0,
          "mc.batch_scalar_slots": 0}
manifests = sorted(glob.glob(os.path.join(out_dir, "*.manifest.json")))
for path in manifests:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"warning: skipping {path}: {e}", file=sys.stderr)
        continue
    counters = doc.get("metrics", {}).get("counters", {})
    for key in totals:
        totals[key] += int(counters.get(key, 0))

wide = totals["mc.batch_wide_slots"]
scalar = totals["mc.batch_scalar_slots"]
slots = wide + scalar
print(f"== batch kernel rollup ({len(manifests)} manifests)")
print(f"   mc.batch_fallbacks    {totals['mc.batch_fallbacks']}")
print(f"   mc.batch_wide_slots   {wide}")
print(f"   mc.batch_scalar_slots {scalar}")
if slots:
    print(f"   wide share            {wide / slots:.1%}")
PYEOF
echo "results in $OUT_DIR/"
