#!/usr/bin/env sh
# Regenerates every experiment series (EXPERIMENTS.md) from a fresh
# build. Usage:
#   scripts/run_experiments.sh [build-dir] [out-dir]
# Environment: JAMELECT_BENCH_TRIALS to raise trial counts.
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-experiment-results}"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

mkdir -p "$OUT_DIR"
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "== $name"
  "$b" --benchmark_format=console | tee "$OUT_DIR/$name.txt"
  "$b" --benchmark_format=csv > "$OUT_DIR/$name.csv" 2>/dev/null
done
echo "results in $OUT_DIR/"
