#!/usr/bin/env sh
# Measures engine throughput (bench_perf_engines) from a Release build
# and records the JSON series quoted in CHANGES.md. Usage:
#   scripts/run_bench_perf.sh [build-dir] [out-file]
# Extra arguments after the first two are passed through to the bench
# binary (e.g. --benchmark_filter=Cohort --benchmark_repetitions=3).
#
# Refuses to record numbers from anything but an NDEBUG build: the
# binary's own JAMELECT_BUILD_PROBE mode reports how the bench code was
# actually compiled (the library_build_type line in the JSON describes
# libbenchmark's packaging, not our flags, and is "debug" on Debian even
# for fully optimised builds).
set -eu

BUILD_DIR="${1:-build-release}"
OUT_FILE="${2:-BENCH_perf_engines.json}"
[ "$#" -ge 1 ] && shift
[ "$#" -ge 1 ] && shift

cmake -B "$BUILD_DIR" -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target bench_perf_engines

BENCH="$BUILD_DIR/bench/bench_perf_engines"
BUILD_TYPE="$(JAMELECT_BUILD_PROBE=1 "$BENCH")"
if [ "$BUILD_TYPE" != "release" ]; then
  echo "error: $BENCH was compiled without NDEBUG (probe says" \
    "'$BUILD_TYPE'); refusing to record debug timings" >&2
  exit 1
fi

# Record the SIMD feature set the batch engine can draw on: the wide
# lane path's numbers are only comparable across machines with the same
# backend (the binary also stamps jamelect_wide_isa into the JSON).
if [ -r /proc/cpuinfo ]; then
  CPU_FEATURES="$(grep -m1 '^flags' /proc/cpuinfo \
    | tr ' ' '\n' | grep -E '^(aes|avx|avx2|avx512[a-z]*|sse4_[12]|fma)$' \
    | tr '\n' ' ' || true)"
  echo "cpu simd features: ${CPU_FEATURES:-none detected}"
fi

"$BENCH" \
  --benchmark_format=console \
  --benchmark_out="$OUT_FILE" \
  --benchmark_out_format=json \
  "$@"

if ! grep -q '"jamelect_build_type": "release"' "$OUT_FILE"; then
  echo "error: $OUT_FILE does not carry jamelect_build_type=release" >&2
  exit 1
fi
if ! grep -q '"jamelect_wide_isa"' "$OUT_FILE"; then
  echo "error: $OUT_FILE does not record jamelect_wide_isa" >&2
  exit 1
fi
# The parallel-orchestration and ctr-rng cases are only interpretable
# with the fan-out width and the AES implementation on record.
if ! grep -q '"jamelect_threads"' "$OUT_FILE"; then
  echo "error: $OUT_FILE does not record jamelect_threads" >&2
  exit 1
fi
if ! grep -q '"jamelect_rng_backend_aes"' "$OUT_FILE"; then
  echo "error: $OUT_FILE does not record jamelect_rng_backend_aes" >&2
  exit 1
fi
echo "results in $OUT_FILE"

# Append one line per run to the benchmark history (BENCH_history.jsonl
# next to the out file): run context + the headline items/sec of every
# benchmark in this run. Append-only so regressions stay diffable
# across commits; failures here never invalidate the run above.
HISTORY_FILE="$(dirname "$OUT_FILE")/BENCH_history.jsonl"
python3 - "$OUT_FILE" "$HISTORY_FILE" <<'PYEOF' || \
  echo "warning: could not append $HISTORY_FILE" >&2
import json, subprocess, sys

out_file, history_file = sys.argv[1], sys.argv[2]
with open(out_file) as f:
    doc = json.load(f)
ctx = doc.get("context", {})
try:
    sha = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                         capture_output=True, text=True,
                         check=True).stdout.strip()
except Exception:
    sha = ""
entry = {
    "date": ctx.get("date", ""),
    "git_sha": sha,
    "host_cpus": ctx.get("num_cpus", 0),
    "build_type": ctx.get("jamelect_build_type", ""),
    "wide_isa": ctx.get("jamelect_wide_isa", ""),
    "threads": ctx.get("jamelect_threads", ""),
    "aes": ctx.get("jamelect_rng_backend_aes", ""),
    "benchmarks": {
        b["name"]: round(b.get("items_per_second", 0.0))
        for b in doc.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    },
}
with open(history_file, "a") as f:
    f.write(json.dumps(entry, sort_keys=True) + "\n")
print(f"history appended to {history_file}")
PYEOF
