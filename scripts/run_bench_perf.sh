#!/usr/bin/env sh
# Measures engine throughput (bench_perf_engines) from a Release build
# and records the JSON series quoted in CHANGES.md. Usage:
#   scripts/run_bench_perf.sh [build-dir] [out-file]
# Extra arguments after the first two are passed through to the bench
# binary (e.g. --benchmark_filter=Cohort --benchmark_repetitions=3).
set -eu

BUILD_DIR="${1:-build-release}"
OUT_FILE="${2:-BENCH_perf_engines.json}"
[ "$#" -ge 1 ] && shift
[ "$#" -ge 1 ] && shift

cmake -B "$BUILD_DIR" -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target bench_perf_engines

"$BUILD_DIR/bench/bench_perf_engines" \
  --benchmark_format=console \
  --benchmark_out="$OUT_FILE" \
  --benchmark_out_format=json \
  "$@"
echo "results in $OUT_FILE"
